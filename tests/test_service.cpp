// Tests for the scenario-evaluation service layer: structural
// fingerprinting, the sharded LRU result cache (exact hits, prefix hits,
// eviction), concurrent hammering, and solve-facade parity against the
// legacy per-solver entry points on the VINS and JPetStore pipelines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "apps/jpetstore.hpp"
#include "apps/vins.hpp"
#include "common/error.hpp"
#include "core/mva_exact.hpp"
#include "core/mva_multiserver.hpp"
#include "core/mvasd.hpp"
#include "core/prediction.hpp"
#include "core/solve.hpp"
#include "interp/cubic_spline.hpp"
#include "service/engine.hpp"
#include "service/fingerprint.hpp"
#include "service/json.hpp"
#include "workload/campaign.hpp"

namespace mtperf {
namespace {

using core::DemandModel;
using core::MvaResult;
using core::ScenarioSpec;
using core::SolverKind;
using service::Engine;
using service::EngineOptions;
using service::Fingerprint;
using service::fingerprint;

ScenarioSpec basic_spec(std::string label = "base", unsigned users = 50) {
  ScenarioSpec spec;
  spec.label = std::move(label);
  spec.network = core::make_network({"cpu", "disk"}, {16, 1}, 1.0);
  spec.demands = DemandModel::constant({0.012, 0.030});
  spec.options.solver = SolverKind::kExactMultiserver;
  spec.options.max_population = users;
  return spec;
}

ScenarioSpec spline_spec(double y_mid = 0.010, unsigned users = 60) {
  ScenarioSpec spec;
  spec.label = "spline";
  spec.network = core::make_network({"cpu", "disk"}, {16, 1}, 1.0);
  auto spline_of = [](std::vector<double> x, std::vector<double> y) {
    return std::make_shared<interp::PiecewiseCubic>(interp::build_cubic_spline(
        interp::SampleSet(std::move(x), std::move(y))));
  };
  spec.demands = DemandModel::interpolated({
      spline_of({1, 50, 200}, {0.012, y_mid, 0.009}),
      spline_of({1, 50, 200}, {0.030, 0.028, 0.027}),
  });
  spec.options.solver = SolverKind::kMvasd;
  spec.options.max_population = users;
  return spec;
}

void expect_identical(const MvaResult& a, const MvaResult& b,
                      double tol = 0.0) {
  ASSERT_EQ(a.levels(), b.levels());
  ASSERT_EQ(a.stations(), b.stations());
  for (std::size_t i = 0; i < a.levels(); ++i) {
    EXPECT_LE(std::abs(a.throughput[i] - b.throughput[i]), tol);
    EXPECT_LE(std::abs(a.response_time[i] - b.response_time[i]), tol);
    EXPECT_LE(std::abs(a.cycle_time[i] - b.cycle_time[i]), tol);
    for (std::size_t k = 0; k < a.stations(); ++k) {
      EXPECT_LE(std::abs(a.utilization(i, k) - b.utilization(i, k)), tol);
      EXPECT_LE(std::abs(a.queue(i, k) - b.queue(i, k)), tol);
    }
  }
}

// ------------------------------------------------------------ fingerprint

TEST(Fingerprint, IgnoresLabelAndPopulation) {
  const auto a = fingerprint(basic_spec("alpha", 10));
  const auto b = fingerprint(basic_spec("beta", 500));
  EXPECT_EQ(a, b);
}

TEST(Fingerprint, DistinguishesStructure) {
  const Fingerprint base = fingerprint(basic_spec());
  std::vector<ScenarioSpec> variants;
  {  // different server count
    auto s = basic_spec();
    s.network = core::make_network({"cpu", "disk"}, {8, 1}, 1.0);
    variants.push_back(std::move(s));
  }
  {  // different think time
    auto s = basic_spec();
    s.network = core::make_network({"cpu", "disk"}, {16, 1}, 2.0);
    variants.push_back(std::move(s));
  }
  {  // different demand value
    auto s = basic_spec();
    s.demands = DemandModel::constant({0.012, 0.031});
    variants.push_back(std::move(s));
  }
  {  // different solver kind
    auto s = basic_spec();
    s.options.solver = SolverKind::kMvasd;
    variants.push_back(std::move(s));
  }
  {  // different station name
    auto s = basic_spec();
    s.network = core::make_network({"cpu", "ssd"}, {16, 1}, 1.0);
    variants.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_FALSE(fingerprint(variants[i]) == base) << "variant " << i;
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_FALSE(fingerprint(variants[i]) == fingerprint(variants[j]))
          << "variants " << i << " vs " << j;
    }
  }
}

TEST(Fingerprint, SolverOptionsOnlyCountWhereUsed) {
  // Schweitzer tolerance is part of the key for the Schweitzer solver...
  auto a = basic_spec();
  a.options.solver = SolverKind::kSchweitzer;
  auto b = a;
  b.options.schweitzer.tolerance *= 10.0;
  EXPECT_FALSE(fingerprint(a) == fingerprint(b));
  // ...but irrelevant (and excluded) for solvers that never read it.
  a.options.solver = SolverKind::kExactMultiserver;
  b.options.solver = SolverKind::kExactMultiserver;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, SplineDemandsHashedByShape) {
  EXPECT_EQ(fingerprint(spline_spec()), fingerprint(spline_spec()));
  EXPECT_FALSE(fingerprint(spline_spec(0.010)) ==
               fingerprint(spline_spec(0.0101)));
}

// ----------------------------------------------------------------- engine

TEST(Engine, ExactHitSharesCachedResult) {
  Engine engine(EngineOptions{.threads = 2});
  const auto first = engine.evaluate(basic_spec("cold"));
  EXPECT_FALSE(first.cache_hit);
  const auto second = engine.evaluate(basic_spec("warm"));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_FALSE(second.prefix_hit);
  EXPECT_EQ(first.result.get(), second.result.get());  // shared, not copied
  EXPECT_EQ(second.label, "warm");

  const auto metrics = engine.metrics();
  EXPECT_EQ(metrics.requests, 2u);
  EXPECT_EQ(metrics.hits, 1u);
  EXPECT_EQ(metrics.misses, 1u);
  EXPECT_DOUBLE_EQ(metrics.hit_rate, 0.5);
}

TEST(Engine, PrefixHitMatchesDirectSolve) {
  Engine engine(EngineOptions{.threads = 2});
  (void)engine.evaluate(basic_spec("deep", 200));

  const auto shallow_spec = basic_spec("shallow", 80);
  const auto shallow = engine.evaluate(shallow_spec);
  EXPECT_TRUE(shallow.cache_hit);
  EXPECT_TRUE(shallow.prefix_hit);
  ASSERT_EQ(shallow.result->levels(), 80u);

  const MvaResult direct = core::solve(shallow_spec.network,
                                       &shallow_spec.demands,
                                       shallow_spec.options);
  expect_identical(*shallow.result, direct);  // bit-for-bit
  EXPECT_EQ(engine.metrics().prefix_hits, 1u);
}

TEST(Engine, DeepeningReplacesShallowEntry) {
  Engine engine(EngineOptions{.threads = 2});
  (void)engine.evaluate(basic_spec("shallow", 40));
  // A deeper request for the same structure must re-solve...
  const auto deep = engine.evaluate(basic_spec("deep", 150));
  EXPECT_FALSE(deep.cache_hit);
  // ...and afterwards both depths are served from the deepened entry.
  EXPECT_TRUE(engine.evaluate(basic_spec("again", 150)).cache_hit);
  EXPECT_TRUE(engine.evaluate(basic_spec("again", 40)).prefix_hit);
  EXPECT_EQ(engine.metrics().entries, 1u);
}

TEST(Engine, LruEvictsUnderPressure) {
  EngineOptions options;
  options.cache_capacity = 2;
  options.shards = 1;
  options.threads = 1;
  Engine engine(options);

  auto spec_with_think = [&](double think) {
    auto s = basic_spec();
    s.network = core::make_network({"cpu", "disk"}, {16, 1}, think);
    return s;
  };
  (void)engine.evaluate(spec_with_think(1.0));
  (void)engine.evaluate(spec_with_think(2.0));
  (void)engine.evaluate(spec_with_think(3.0));  // evicts think=1.0 (LRU)

  auto metrics = engine.metrics();
  EXPECT_EQ(metrics.entries, 2u);
  EXPECT_GE(metrics.evictions, 1u);

  EXPECT_TRUE(engine.evaluate(spec_with_think(3.0)).cache_hit);
  EXPECT_TRUE(engine.evaluate(spec_with_think(2.0)).cache_hit);
  EXPECT_FALSE(engine.evaluate(spec_with_think(1.0)).cache_hit);  // was evicted
}

TEST(Engine, ClearDropsEntriesKeepsCounters) {
  Engine engine(EngineOptions{.threads = 1});
  (void)engine.evaluate(basic_spec());
  engine.clear();
  EXPECT_EQ(engine.metrics().entries, 0u);
  EXPECT_EQ(engine.metrics().requests, 1u);
  EXPECT_FALSE(engine.evaluate(basic_spec()).cache_hit);
}

TEST(Engine, BatchPreservesOrderAndCaches) {
  Engine engine(EngineOptions{.threads = 4});
  std::vector<ScenarioSpec> specs;
  for (unsigned i = 0; i < 12; ++i) {
    specs.push_back(basic_spec("s" + std::to_string(i), 30 + 10 * (i % 3)));
  }
  const auto evaluations = engine.evaluate_batch(specs);
  ASSERT_EQ(evaluations.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(evaluations[i].label, specs[i].label);
    EXPECT_EQ(evaluations[i].result->levels(), specs[i].options.max_population);
  }
  // 12 structurally identical requests at depths {30,40,50}: at most a few
  // solves (concurrent identical misses may double-solve), mostly hits.
  EXPECT_GE(engine.metrics().hits, 6u);
}

TEST(Engine, RunScenariosThroughEvaluatorInterface) {
  Engine engine(EngineOptions{.threads = 2});
  const std::vector<ScenarioSpec> specs{basic_spec("a", 40),
                                        basic_spec("b", 40)};
  // Route the core sweep entry point through the engine.
  const auto rows =
      core::run_scenarios(specs, &engine.pool(), &engine);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "a");
  EXPECT_EQ(rows[1].label, "b");
  expect_identical(rows[0].result, rows[1].result);
  EXPECT_GE(engine.metrics().hits, 1u);
}

TEST(Engine, ConcurrentHammerStaysConsistent) {
  // Cold baselines, solved directly.
  std::vector<ScenarioSpec> specs;
  for (unsigned i = 0; i < 4; ++i) {
    auto s = basic_spec("c" + std::to_string(i), 60);
    s.demands = DemandModel::constant({0.012 + 0.001 * i, 0.030});
    specs.push_back(std::move(s));
  }
  std::vector<MvaResult> baselines;
  for (const auto& s : specs) {
    baselines.push_back(core::solve(s.network, &s.demands, s.options));
  }

  Engine engine(EngineOptions{.threads = 4});
  constexpr int kRounds = 50;
  std::vector<std::future<service::Evaluation>> futures;
  futures.reserve(kRounds * specs.size());
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto s = specs[i];
      // Vary the requested depth to exercise prefix hits under contention.
      s.options.max_population = 30 + 10 * (round % 4);
      futures.push_back(engine.submit(std::move(s)));
    }
  }
  std::size_t checked = 0;
  for (std::size_t f = 0; f < futures.size(); ++f) {
    const auto evaluation = futures[f].get();
    const auto& baseline = baselines[f % specs.size()];
    const auto& got = *evaluation.result;
    ASSERT_LE(got.levels(), baseline.levels());
    for (std::size_t i = 0; i < got.levels(); ++i) {
      ASSERT_DOUBLE_EQ(got.throughput[i], baseline.throughput[i]);
      ASSERT_DOUBLE_EQ(got.response_time[i], baseline.response_time[i]);
    }
    ++checked;
  }
  EXPECT_EQ(checked, futures.size());

  const auto metrics = engine.metrics();
  EXPECT_EQ(metrics.requests, futures.size());
  EXPECT_EQ(metrics.queue_depth, 0u);
  // 200 requests over 4 structures x 4 depths: even with concurrent
  // duplicate misses the cache must absorb the vast majority.
  EXPECT_GT(metrics.hit_rate, 0.8);
}

TEST(Engine, RejectsCustomRateMultipliers) {
  auto spec = basic_spec();
  spec.options.solver = SolverKind::kLoadDependent;
  spec.options.rates = {core::multiserver_rate(16), core::multiserver_rate(1)};
  Engine engine(EngineOptions{.threads = 1});
  EXPECT_THROW((void)engine.evaluate(spec), Error);
}

// ------------------------------------------------------------- multiclass

/// A two-class mix over cpu+disk.  `heavy` is the fixed class; `light`
/// is last-with-population, so the series kinds sweep it as the axis.
/// `varying` swaps light's constant demands for a concurrency spline
/// (exercising the per-class MulticlassGrid cache path).
ScenarioSpec multiclass_spec(SolverKind kind, unsigned axis_pop = 12,
                             bool varying = false) {
  ScenarioSpec spec;
  spec.label = "mix";
  spec.network = core::make_network({"cpu", "disk"}, {1, 1}, 0.0);
  core::CustomerClass heavy{"heavy", 8, 1.0, {0.020, 0.010}, nullptr};
  core::CustomerClass light{"light", axis_pop, 2.0, {0.004, 0.012}, nullptr};
  if (varying) {
    auto spline_of = [](std::vector<double> x, std::vector<double> y) {
      return std::make_shared<interp::PiecewiseCubic>(
          interp::build_cubic_spline(
              interp::SampleSet(std::move(x), std::move(y))));
    };
    light.demand_model = std::make_shared<const DemandModel>(
        DemandModel::interpolated({
            spline_of({1, 10, 40}, {0.004, 0.005, 0.007}),
            spline_of({1, 10, 40}, {0.012, 0.011, 0.010}),
        }));
  }
  spec.options.solver = kind;
  spec.options.classes = {std::move(heavy), std::move(light)};
  core::finalize_multiclass_options(spec.options);
  return spec;
}

TEST(Fingerprint, MulticlassAxisPopulationExcludedForSeriesKinds) {
  // The series kinds emit every axis level, so a deeper axis is the same
  // key family (prefix reuse) ...
  EXPECT_EQ(fingerprint(multiclass_spec(SolverKind::kExactMulticlass, 12)),
            fingerprint(multiclass_spec(SolverKind::kExactMulticlass, 40)));
  // ... but MoM answers only the full mix, so every population is key
  // material there.
  EXPECT_FALSE(fingerprint(multiclass_spec(SolverKind::kMomMulticlass, 12)) ==
               fingerprint(multiclass_spec(SolverKind::kMomMulticlass, 40)));
}

TEST(Fingerprint, MulticlassDistinguishesMixShape) {
  const Fingerprint base =
      fingerprint(multiclass_spec(SolverKind::kExactMulticlass));
  std::vector<ScenarioSpec> variants;
  {  // different class name
    auto s = multiclass_spec(SolverKind::kExactMulticlass);
    s.options.classes[0].name = "heavier";
    variants.push_back(std::move(s));
  }
  {  // different class think time
    auto s = multiclass_spec(SolverKind::kExactMulticlass);
    s.options.classes[0].think_time = 1.5;
    variants.push_back(std::move(s));
  }
  {  // different non-axis population
    auto s = multiclass_spec(SolverKind::kExactMulticlass);
    s.options.classes[0].population = 9;
    variants.push_back(std::move(s));
  }
  {  // different demand value
    auto s = multiclass_spec(SolverKind::kExactMulticlass);
    s.options.classes[0].demands[1] = 0.011;
    variants.push_back(std::move(s));
  }
  {  // spline demands instead of constants
    variants.push_back(
        multiclass_spec(SolverKind::kExactMulticlass, 12, /*varying=*/true));
  }
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_FALSE(fingerprint(variants[i]) == base) << "variant " << i;
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_FALSE(fingerprint(variants[i]) == fingerprint(variants[j]))
          << "variants " << i << " vs " << j;
    }
  }
}

TEST(Fingerprint, MulticlassConstantVectorAndConstantModelAgree) {
  // A class described by a demand vector and one described by an
  // equivalent DemandModel::constant are the same scenario — and must
  // land on the same cache key.
  auto a = multiclass_spec(SolverKind::kExactMulticlass);
  auto b = multiclass_spec(SolverKind::kExactMulticlass);
  b.options.classes[1].demand_model = std::make_shared<const DemandModel>(
      DemandModel::constant(b.options.classes[1].demands));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Engine, MulticlassAxisPrefixHitMatchesDirectSolve) {
  Engine engine(EngineOptions{.threads = 2});
  (void)engine.evaluate(multiclass_spec(SolverKind::kExactMulticlass, 40));

  const auto shallow_spec = multiclass_spec(SolverKind::kExactMulticlass, 12);
  const auto shallow = engine.evaluate(shallow_spec);
  EXPECT_TRUE(shallow.cache_hit);
  EXPECT_TRUE(shallow.prefix_hit);
  ASSERT_EQ(shallow.result->levels(), 12u);
  ASSERT_EQ(shallow.result->classes(), 2u);

  const MvaResult direct = core::solve(shallow_spec.network,
                                       &shallow_spec.demands,
                                       shallow_spec.options);
  expect_identical(*shallow.result, direct);  // bit-for-bit
  for (std::size_t i = 0; i < direct.levels(); ++i) {
    for (std::size_t c = 0; c < direct.classes(); ++c) {
      EXPECT_EQ(shallow.result->class_x(i, c), direct.class_x(i, c));
      EXPECT_EQ(shallow.result->class_r(i, c), direct.class_r(i, c));
    }
  }
  EXPECT_EQ(engine.metrics().prefix_hits, 1u);
}

TEST(Engine, MulticlassClassGridDeepensAndMatchesDirectSolve) {
  Engine engine(EngineOptions{.threads = 2});
  const auto shallow =
      multiclass_spec(SolverKind::kExactMulticlass, 10, /*varying=*/true);
  (void)engine.evaluate(shallow);
  const auto deep =
      multiclass_spec(SolverKind::kExactMulticlass, 30, /*varying=*/true);
  const auto evaluated = engine.evaluate(deep);
  EXPECT_FALSE(evaluated.cache_hit);  // deeper axis re-solves...
  EXPECT_EQ(engine.metrics().entries, 1u);  // ...into the same entry

  const MvaResult direct =
      core::solve(deep.network, &deep.demands, deep.options);
  expect_identical(*evaluated.result, direct);  // grid reuse is bit-exact
}

TEST(Engine, MomMulticlassCachesWholeMixesOnly) {
  Engine engine(EngineOptions{.threads = 2});
  const auto first = engine.evaluate(multiclass_spec(SolverKind::kMomMulticlass));
  EXPECT_FALSE(first.cache_hit);
  ASSERT_EQ(first.result->levels(), 1u);
  const auto again = engine.evaluate(multiclass_spec(SolverKind::kMomMulticlass));
  EXPECT_TRUE(again.cache_hit);
  EXPECT_FALSE(again.prefix_hit);
  EXPECT_EQ(first.result.get(), again.result.get());
  // A different axis population is a different mix — a fresh miss, never
  // a prefix of the cached one.
  const auto other =
      engine.evaluate(multiclass_spec(SolverKind::kMomMulticlass, 13));
  EXPECT_FALSE(other.cache_hit);
}

// ----------------------------------------------------------------- facade

TEST(SolveFacade, KindNamesRoundTrip) {
  for (const auto kind :
       {SolverKind::kExactSingleServer, SolverKind::kExactMultiserver,
        SolverKind::kSchweitzer, SolverKind::kApproxMultiserver,
        SolverKind::kLoadDependent, SolverKind::kMvasd,
        SolverKind::kMvasdSingleServer, SolverKind::kSeidmann,
        SolverKind::kSeidmannSchweitzer}) {
    EXPECT_EQ(core::parse_solver_kind(core::solver_kind_name(kind)), kind);
  }
  EXPECT_THROW(core::parse_solver_kind("no-such-solver"), Error);
}

TEST(SolveFacade, ErrorsCarryStablePrefix) {
  const auto spec = basic_spec();
  core::SolveOptions bad = spec.options;
  bad.max_population = 0;
  try {
    (void)core::solve(spec.network, &spec.demands, bad);
    FAIL() << "expected mtperf::Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).rfind(Error::prefix(), 0), 0u)
        << e.what();
  }
  // Network construction errors carry the same prefix.
  try {
    (void)core::make_network({}, {}, 1.0);
    FAIL() << "expected mtperf::Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).rfind(Error::prefix(), 0), 0u);
  }
}

TEST(SolveFacade, ConstantOnlySolversRejectVaryingDemands) {
  auto spec = spline_spec();
  spec.options.solver = SolverKind::kSchweitzer;
  EXPECT_THROW((void)core::solve(spec.network, &spec.demands, spec.options),
               Error);
}

// ------------------------------------------------- facade parity (paper)

workload::CampaignSettings parity_settings() {
  workload::CampaignSettings s;
  s.grinder.duration_s = 400.0;
  s.warmup_fraction = 0.25;
  s.seed = 2026;
  return s;
}

class FacadeParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vins_ = new workload::CampaignResult(workload::run_campaign(
        apps::make_vins(), apps::vins_campaign_levels(), parity_settings()));
    jps_ = new workload::CampaignResult(
        workload::run_campaign(apps::make_jpetstore(),
                               apps::jpetstore_campaign_levels(),
                               parity_settings()));
  }
  static void TearDownTestSuite() {
    delete vins_;
    delete jps_;
    vins_ = nullptr;
    jps_ = nullptr;
  }

  static constexpr double kTol = 1e-12;
  static constexpr double kThink = 1.0;

  static workload::CampaignResult* vins_;
  static workload::CampaignResult* jps_;
};

workload::CampaignResult* FacadeParity::vins_ = nullptr;
workload::CampaignResult* FacadeParity::jps_ = nullptr;

TEST_F(FacadeParity, VinsMvasdMatchesLegacy) {
  const auto spec = core::mvasd_scenario("MVASD", vins_->table, kThink, 800);
  const auto via_facade = core::solve(spec.network, spec.demands, spec.options);
  const auto legacy = core::mvasd(spec.network, spec.demands, 800);
  expect_identical(via_facade, legacy, kTol);
}

TEST_F(FacadeParity, VinsFixedMvaMatchesLegacy) {
  const auto spec =
      core::mva_fixed_scenario("MVA 203", vins_->table, kThink, 800, 203.0);
  const auto via_facade = core::solve(spec.network, spec.demands, spec.options);
  const auto legacy = core::exact_multiserver_mva(
      spec.network, vins_->table.demands_at_concurrency(203.0), 800);
  expect_identical(via_facade, legacy, kTol);
}

TEST_F(FacadeParity, JPetStoreMvasdMatchesLegacy) {
  const auto spec = core::mvasd_scenario("MVASD", jps_->table, kThink, 280);
  const auto via_facade = core::solve(spec.network, spec.demands, spec.options);
  const auto legacy = core::mvasd(spec.network, spec.demands, 280);
  expect_identical(via_facade, legacy, kTol);
}

TEST_F(FacadeParity, JPetStoreSingleServerMatchesLegacy) {
  const auto spec =
      core::mvasd_single_server_scenario("SS", jps_->table, kThink, 280);
  const auto via_facade = core::solve(spec.network, spec.demands, spec.options);
  const auto legacy = core::mvasd_single_server(spec.network, spec.demands, 280);
  expect_identical(via_facade, legacy, kTol);
}

TEST_F(FacadeParity, EngineMatchesFacadeOnJPetStore) {
  const auto spec = core::mvasd_scenario("MVASD", jps_->table, kThink, 280);
  Engine engine(EngineOptions{.threads = 2});
  const auto via_engine = engine.evaluate(spec);
  const auto direct = core::solve(spec.network, spec.demands, spec.options);
  expect_identical(*via_engine.result, direct);  // bit-for-bit
}

// ------------------------------------------------------------------- json

TEST(Json, ParseDumpRoundTrip) {
  const auto v = service::Json::parse(
      R"({"a":[1,2.5,-3e2],"b":{"nested":true},"s":"x\ny","n":null})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(v.at("b").at("nested").as_bool());
  EXPECT_EQ(v.at("s").as_string(), "x\ny");
  const auto redumped = service::Json::parse(v.dump());
  EXPECT_EQ(redumped.dump(), v.dump());
}

TEST(Json, ParseErrorsAreMtperfErrors) {
  EXPECT_THROW(service::Json::parse("{"), Error);
  EXPECT_THROW(service::Json::parse("[1,]"), Error);
  EXPECT_THROW(service::Json::parse("{} trailing"), Error);
}

TEST(Json, DuplicateObjectKeysAreRejected) {
  // Regression: duplicates used to resolve last-wins via insert_or_assign,
  // silently masking client bugs like {"think":1,...,"think":2}.  They are
  // parse errors now, at any nesting depth.
  try {
    service::Json::parse(R"({"think":1,"think":2})");
    FAIL() << "duplicate key accepted";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key"),
              std::string::npos);
  }
  EXPECT_THROW(service::Json::parse(R"({"a":{"x":1,"x":2}})"),
               invalid_argument_error);
  EXPECT_THROW(service::Json::parse(R"([{"k":null,"k":null}])"),
               invalid_argument_error);
  // Same key at different depths is fine — only siblings collide.
  const auto v = service::Json::parse(R"({"a":{"a":1},"b":{"a":2}})");
  EXPECT_DOUBLE_EQ(v.at("b").at("a").as_number(), 2.0);
}

}  // namespace
}  // namespace mtperf
