// Tests of the VINS and JPetStore application models: structure, demand
// laws, and the bottleneck signatures the paper reports for each.
#include <gtest/gtest.h>

#include "apps/jpetstore.hpp"
#include "apps/testbed.hpp"
#include "apps/vins.hpp"
#include "common/error.hpp"

namespace mtperf::apps {
namespace {

// ----------------------------------------------------------------- testbed

TEST(Testbed, TwelveStationsInTableOrder) {
  const auto stations = three_tier_stations(16);
  ASSERT_EQ(stations.size(), static_cast<std::size_t>(kStationCount));
  EXPECT_EQ(stations[kLoadCpu].name, "load/cpu");
  EXPECT_EQ(stations[kDbNetRx].name, "db/net-rx");
  EXPECT_EQ(stations[kDbCpu].servers, 16u);
  EXPECT_EQ(stations[kDbDisk].servers, 1u);
  EXPECT_EQ(stations[kAppNetTx].servers, 1u);
}

TEST(Testbed, DistributePagesPreservesTotals) {
  const auto pages = distribute_pages({"a", "b"}, {0.10, 0.02}, {0.7, 0.3});
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_NEAR(pages[0].base_demand[0] + pages[1].base_demand[0], 0.10, 1e-12);
  EXPECT_NEAR(pages[0].base_demand[1] + pages[1].base_demand[1], 0.02, 1e-12);
  EXPECT_NEAR(pages[0].base_demand[0], 0.07, 1e-12);
}

TEST(Testbed, DistributePagesValidatesWeights) {
  EXPECT_THROW(distribute_pages({"a"}, {0.1}, {0.5}), invalid_argument_error);
  EXPECT_THROW(distribute_pages({"a", "b"}, {0.1}, {1.0}),
               invalid_argument_error);
}

// -------------------------------------------------------------------- VINS

TEST(Vins, SevenPageRenewPolicyWorkflow) {
  const auto app = make_vins();
  EXPECT_EQ(app.page_count(), 7u);  // the paper's Renew Policy length
  EXPECT_EQ(app.stations().size(), static_cast<std::size_t>(kStationCount));
  EXPECT_DOUBLE_EQ(app.think_time(), 1.0);
  EXPECT_EQ(app.stations()[kDbCpu].servers, 16u);
}

TEST(Vins, DbDiskIsTheBottleneckResource) {
  // The VINS signature (Table 2): the DB disk carries the largest
  // *effective* demand (demand over server count) at high concurrency.
  const auto app = make_vins();
  const auto demands = app.true_demands(1500.0);
  const auto& stations = app.stations();
  const double db_disk = demands[kDbDisk] /
                         static_cast<double>(stations[kDbDisk].servers);
  for (std::size_t k = 0; k < demands.size(); ++k) {
    if (k == kDbDisk) continue;
    EXPECT_GE(db_disk,
              demands[k] / static_cast<double>(stations[k].servers))
        << "station " << stations[k].name;
  }
}

TEST(Vins, DemandsDecreaseWithConcurrency) {
  const auto app = make_vins();
  for (std::size_t k = 0; k < app.stations().size(); ++k) {
    const double d1 = app.true_demand(k, 1.0);
    const double d500 = app.true_demand(k, 500.0);
    const double d1500 = app.true_demand(k, 1500.0);
    EXPECT_GT(d1, d500) << app.stations()[k].name;
    EXPECT_GE(d500, d1500) << app.stations()[k].name;
  }
}

TEST(Vins, CampaignLevelsAscendAndCoverPaperRange) {
  const auto levels = vins_campaign_levels();
  ASSERT_GE(levels.size(), 5u);
  EXPECT_EQ(levels.front(), 1u);
  EXPECT_EQ(levels.back(), 1500u);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i], levels[i - 1]);
  }
}

TEST(Vins, ConfigurableCoreCount) {
  VinsConfig cfg;
  cfg.cpu_cores = 8;
  const auto app = make_vins(cfg);
  EXPECT_EQ(app.stations()[kLoadCpu].servers, 8u);
}


TEST(Vins, AllFourWorkflowsBuild) {
  for (auto wf : {VinsWorkflow::kRegistration, VinsWorkflow::kNewPolicy,
                  VinsWorkflow::kRenewPolicy,
                  VinsWorkflow::kReadPolicyDetails}) {
    VinsConfig cfg;
    cfg.workflow = wf;
    const auto app = make_vins(cfg);
    EXPECT_GE(app.page_count(), 4u);
    EXPECT_EQ(app.stations().size(), static_cast<std::size_t>(kStationCount));
    // Every workflow touches the database.
    EXPECT_GT(app.true_demand(kDbCpu, 1.0), 0.0);
  }
}

TEST(Vins, ReadWorkflowIsLightestOnTheDatabase) {
  VinsConfig read_cfg;
  read_cfg.workflow = VinsWorkflow::kReadPolicyDetails;
  const auto read = make_vins(read_cfg);
  const auto renew = make_vins();
  // Read-only flow stresses the DB disk far less than Renew Policy,
  // increasingly so at load (caches).
  EXPECT_LT(read.true_demand(kDbDisk, 1.0), renew.true_demand(kDbDisk, 1.0));
  EXPECT_LT(read.true_demand(kDbDisk, 500.0),
            0.5 * renew.true_demand(kDbDisk, 500.0));
}

TEST(Vins, WriteWorkflowsAreDiskHeavierThanRenew) {
  VinsConfig reg_cfg;
  reg_cfg.workflow = VinsWorkflow::kRegistration;
  const auto reg = make_vins(reg_cfg);
  const auto renew = make_vins();
  EXPECT_GT(reg.true_demand(kDbDisk, 1.0), renew.true_demand(kDbDisk, 1.0));
}

// --------------------------------------------------------------- JPetStore

TEST(JPetStore, FourteenPageShoppingWorkflow) {
  const auto app = make_jpetstore();
  EXPECT_EQ(app.page_count(), 14u);  // the paper's JPetStore length
  EXPECT_DOUBLE_EQ(app.think_time(), 1.0);
}

TEST(JPetStore, DbCpuDominatesTotalDemand) {
  // "Typically this is a CPU heavy application."
  const auto app = make_jpetstore();
  const auto demands = app.true_demands(140.0);
  for (std::size_t k = 0; k < demands.size(); ++k) {
    if (k == kDbCpu) continue;
    EXPECT_GT(demands[kDbCpu], demands[k]);
  }
}

TEST(JPetStore, DbCpuAndDiskShareTheBottleneck) {
  // Table 3: DB CPU and DB disk saturate together near 140 users — their
  // effective demands must be close and jointly the largest.
  const auto app = make_jpetstore();
  const auto demands = app.true_demands(200.0);
  const auto& st = app.stations();
  const double cpu_eff = demands[kDbCpu] / st[kDbCpu].servers;
  const double disk_eff = demands[kDbDisk] / st[kDbDisk].servers;
  EXPECT_NEAR(cpu_eff, disk_eff, 0.25 * std::max(cpu_eff, disk_eff));
  for (std::size_t k = 0; k < demands.size(); ++k) {
    if (k == kDbCpu || k == kDbDisk) continue;
    EXPECT_LT(demands[k] / st[k].servers, std::max(cpu_eff, disk_eff));
  }
}

TEST(JPetStore, DbCpuDemandRisesPastSaturation) {
  // The 140-168 user contention bump behind Fig. 7's throughput dip.
  const auto app = make_jpetstore();
  const double before = app.true_demand(kDbCpu, 120.0);
  const double after = app.true_demand(kDbCpu, 180.0);
  EXPECT_GT(after, before);
}

TEST(JPetStore, CampaignLevelsMatchPaperTable3) {
  const auto levels = jpetstore_campaign_levels();
  EXPECT_EQ(levels, (std::vector<unsigned>{1, 14, 28, 70, 140, 168, 210, 280}));
}

}  // namespace
}  // namespace mtperf::apps
