// Unit and property tests for mtperf::core — the MVA family.
//
// Exactness anchors:
//  * closed-form results for single-queue and balanced networks,
//  * an independent birth-death oracle for machine-repair (M/M/C//N)
//    models with think time,
//  * cross-checks between independent solver implementations
//    (Algorithm 2 vs the full load-dependent recursion),
//  * the operational-analysis bounds every prediction must respect.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <tuple>

#include "apps/jpetstore.hpp"
#include "apps/vins.hpp"
#include "common/error.hpp"
#include "core/demand_model.hpp"
#include "core/mva_exact.hpp"
#include "core/mva_load_dependent.hpp"
#include "core/mva_multiserver.hpp"
#include "core/mva_schweitzer.hpp"
#include "core/mvasd.hpp"
#include "core/network.hpp"
#include "core/prediction.hpp"
#include "core/seidmann.hpp"
#include "core/sweep.hpp"
#include "interp/cubic_spline.hpp"
#include "ops/bounds.hpp"

namespace mtperf::core {
namespace {

/// Birth-death oracle for the machine-repair model: N customers, think time
/// Z (exponential), one station with C servers of mean service time S.
/// Returns system throughput at population N.
double machine_repair_throughput(unsigned n_customers, double z, double s,
                                 unsigned servers) {
  // State j = customers at the station.  lambda(j) = (N - j)/Z,
  // mu(j) = min(j, C)/S.  pi via the product form of birth-death chains.
  std::vector<double> pi(n_customers + 1, 0.0);
  pi[0] = 1.0;
  for (unsigned j = 1; j <= n_customers; ++j) {
    const double lambda = static_cast<double>(n_customers - (j - 1)) / z;
    const double mu = static_cast<double>(std::min(j, servers)) / s;
    pi[j] = pi[j - 1] * lambda / mu;
  }
  double total = 0.0;
  for (double p : pi) total += p;
  for (double& p : pi) p /= total;
  double x = 0.0;
  for (unsigned j = 1; j <= n_customers; ++j) {
    x += pi[j] * static_cast<double>(std::min(j, servers)) / s;
  }
  return x;
}

ClosedNetwork single_station(unsigned servers, double z) {
  return ClosedNetwork({Station{"st", 1.0, servers, StationKind::kQueueing}}, z);
}

// --------------------------------------------------------------- network

TEST(Network, Validation) {
  EXPECT_THROW(ClosedNetwork({}, 1.0), invalid_argument_error);
  EXPECT_THROW(ClosedNetwork({Station{"a", 1.0, 0}}, 1.0),
               invalid_argument_error);
  EXPECT_THROW(ClosedNetwork({Station{"a", -1.0, 1}}, 1.0),
               invalid_argument_error);
  EXPECT_THROW(ClosedNetwork({Station{"a", 1.0, 1}}, -1.0),
               invalid_argument_error);
}

TEST(Network, IndexLookup) {
  const auto net = make_network({"a", "b"}, {1, 2}, 0.5);
  EXPECT_EQ(net.index_of("b"), 1u);
  EXPECT_THROW(net.index_of("c"), invalid_argument_error);
  EXPECT_EQ(net.station(1).servers, 2u);
}

// -------------------------------------------------------------- exact MVA

TEST(ExactMva, SingleQueueNoThinkSaturatesImmediately) {
  // One queue, Z = 0: all customers queue, X = 1/S, R = n S.
  const auto net = single_station(1, 0.0);
  const std::vector<double> s{0.25};
  const auto r = exact_mva(net, s, 10);
  for (std::size_t i = 0; i < r.levels(); ++i) {
    EXPECT_NEAR(r.throughput[i], 4.0, 1e-12);
    EXPECT_NEAR(r.response_time[i], 0.25 * static_cast<double>(i + 1), 1e-12);
  }
}

TEST(ExactMva, MachineRepairMatchesBirthDeathOracle) {
  const auto net = single_station(1, 2.0);
  const std::vector<double> s{0.5};
  const auto r = exact_mva(net, s, 20);
  for (unsigned n = 1; n <= 20; ++n) {
    EXPECT_NEAR(r.throughput[r.row_for(n)],
                machine_repair_throughput(n, 2.0, 0.5, 1), 1e-9)
        << "n=" << n;
  }
}

TEST(ExactMva, BalancedNetworkClosedForm) {
  // K identical single-server queues, Z = 0: X(n) = n / (S (K + n - 1)).
  const auto net = make_network({"a", "b", "c"}, {1, 1, 1}, 0.0);
  const std::vector<double> s{0.2, 0.2, 0.2};
  const auto r = exact_mva(net, s, 15);
  for (unsigned n = 1; n <= 15; ++n) {
    const double expected =
        static_cast<double>(n) / (0.2 * (3.0 + static_cast<double>(n) - 1.0));
    EXPECT_NEAR(r.throughput[r.row_for(n)], expected, 1e-12);
  }
}

TEST(ExactMva, LittlesLawHoldsExactlyAtEveryLevel) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.5);
  const std::vector<double> s{0.1, 0.3};
  const auto r = exact_mva(net, s, 50);
  for (std::size_t i = 0; i < r.levels(); ++i) {
    EXPECT_NEAR(r.throughput[i] * r.cycle_time[i],
                static_cast<double>(r.population[i]), 1e-9);
  }
}

TEST(ExactMva, CustomersConservedAcrossQueuesAndThink) {
  const auto net = make_network({"a", "b"}, {1, 1}, 2.0);
  const std::vector<double> s{0.1, 0.3};
  const auto r = exact_mva(net, s, 30);
  for (std::size_t i = 0; i < r.levels(); ++i) {
    const double in_queues = r.queue(i, 0) + r.queue(i, 1);
    const double thinking = r.throughput[i] * 2.0;
    EXPECT_NEAR(in_queues + thinking, static_cast<double>(r.population[i]),
                1e-9);
  }
}

TEST(ExactMva, ThroughputMonotoneAndBounded) {
  const auto net = make_network({"a", "b", "c"}, {1, 1, 1}, 1.0);
  const std::vector<double> s{0.05, 0.12, 0.03};
  const auto r = exact_mva(net, s, 200);
  ops::BoundsInput bounds{s, 1.0};
  double prev = 0.0;
  for (std::size_t i = 0; i < r.levels(); ++i) {
    EXPECT_GE(r.throughput[i], prev - 1e-12);
    prev = r.throughput[i];
    EXPECT_LE(r.throughput[i],
              ops::throughput_upper_bound(
                  bounds, static_cast<double>(r.population[i])) + 1e-9);
    EXPECT_GE(r.response_time[i],
              ops::response_time_lower_bound(
                  bounds, static_cast<double>(r.population[i])) - 1e-9);
  }
  // Saturation: X -> 1/Dmax.
  EXPECT_NEAR(r.throughput.back(), 1.0 / 0.12, 1e-3);
}

TEST(ExactMva, BalancedJobBoundsSandwichExactSolution) {
  const auto net = make_network({"a", "b", "c"}, {1, 1, 1}, 0.75);
  const std::vector<double> s{0.08, 0.10, 0.06};
  const auto r = exact_mva(net, s, 60);
  ops::BoundsInput in{s, 0.75};
  for (unsigned n : {1u, 5u, 15u, 40u, 60u}) {
    const auto bjb = ops::balanced_job_bounds(in, n);
    const double x = r.throughput[r.row_for(n)];
    EXPECT_GE(x, bjb.throughput_lower - 1e-9) << "n=" << n;
    EXPECT_LE(x, bjb.throughput_upper + 1e-9) << "n=" << n;
  }
}

TEST(ExactMva, DelayStationAddsPureLatency) {
  // A delay station never queues: throughput matches an equivalent think
  // time increase.
  const ClosedNetwork with_delay(
      {Station{"q", 1.0, 1, StationKind::kQueueing},
       Station{"d", 1.0, 1, StationKind::kDelay}},
      1.0);
  const auto net_bigger_z = single_station(1, 1.5);
  const std::vector<double> s2{0.2, 0.5};
  const std::vector<double> s1{0.2};
  const auto a = exact_mva(with_delay, s2, 25);
  const auto b = exact_mva(net_bigger_z, s1, 25);
  for (std::size_t i = 0; i < a.levels(); ++i) {
    EXPECT_NEAR(a.throughput[i], b.throughput[i], 1e-9);
  }
}

TEST(ExactMva, VisitCountsFoldIntoDemands) {
  // V=3, S=0.1 must behave exactly like V=1, S=0.3.
  const ClosedNetwork visits(
      {Station{"q", 3.0, 1, StationKind::kQueueing}}, 1.0);
  const ClosedNetwork folded(
      {Station{"q", 1.0, 1, StationKind::kQueueing}}, 1.0);
  const auto a = exact_mva(visits, std::vector<double>{0.1}, 20);
  const auto b = exact_mva(folded, std::vector<double>{0.3}, 20);
  for (std::size_t i = 0; i < a.levels(); ++i) {
    EXPECT_NEAR(a.throughput[i], b.throughput[i], 1e-12);
    EXPECT_NEAR(a.response_time[i], b.response_time[i], 1e-12);
  }
}

TEST(ExactMva, Validation) {
  const auto net = single_station(1, 1.0);
  EXPECT_THROW(exact_mva(net, std::vector<double>{0.1, 0.2}, 5),
               invalid_argument_error);
  EXPECT_THROW(exact_mva(net, std::vector<double>{-0.1}, 5),
               invalid_argument_error);
  EXPECT_THROW(exact_mva(net, std::vector<double>{0.1}, 0),
               invalid_argument_error);
}

// -------------------------------------------------------------- Schweitzer

TEST(Schweitzer, ExactAtPopulationOne) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.0);
  const std::vector<double> s{0.2, 0.4};
  const auto approx = schweitzer_mva(net, s, 1);
  const auto exact = exact_mva(net, s, 1);
  EXPECT_NEAR(approx.throughput[0], exact.throughput[0], 1e-8);
}

TEST(Schweitzer, WithinAFewPercentOfExact) {
  const auto net = make_network({"a", "b", "c"}, {1, 1, 1}, 1.0);
  const std::vector<double> s{0.05, 0.12, 0.03};
  const auto approx = schweitzer_mva(net, s, 100);
  const auto exact = exact_mva(net, s, 100);
  for (unsigned n : {5u, 20u, 50u, 100u}) {
    const double a = approx.throughput[approx.row_for(n)];
    const double e = exact.throughput[exact.row_for(n)];
    EXPECT_NEAR(a, e, 0.05 * e) << "n=" << n;
  }
}

TEST(Schweitzer, RespectsAsymptoticBounds) {
  const auto net = make_network({"a", "b"}, {1, 1}, 0.5);
  const std::vector<double> s{0.07, 0.11};
  const auto r = schweitzer_mva(net, s, 150);
  ops::BoundsInput bounds{s, 0.5};
  for (std::size_t i = 0; i < r.levels(); ++i) {
    EXPECT_LE(r.throughput[i],
              ops::throughput_upper_bound(
                  bounds, static_cast<double>(r.population[i])) + 1e-6);
  }
}

// ----------------------------------------------------- multi-server exact

TEST(MultiServer, SingleServerReducesToExactMva) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.0);
  const std::vector<double> s{0.1, 0.25};
  const auto ms = exact_multiserver_mva(net, s, 40);
  const auto ex = exact_mva(net, s, 40);
  for (std::size_t i = 0; i < ms.levels(); ++i) {
    EXPECT_NEAR(ms.throughput[i], ex.throughput[i], 1e-12);
    EXPECT_NEAR(ms.response_time[i], ex.response_time[i], 1e-12);
  }
}

class MachineRepairMultiServer
    : public ::testing::TestWithParam<std::tuple<unsigned, double, double>> {};

TEST_P(MachineRepairMultiServer, MatchesBirthDeathOracle) {
  const auto [servers, s, z] = GetParam();
  const auto net = single_station(servers, z);
  const std::vector<double> demands{s};
  const unsigned n_max = 4 * servers + 12;
  const auto r = exact_multiserver_mva(net, demands, n_max);
  for (unsigned n = 1; n <= n_max; ++n) {
    const double oracle = machine_repair_throughput(n, z, s, servers);
    EXPECT_NEAR(r.throughput[r.row_for(n)], oracle, 0.002 * oracle)
        << "C=" << servers << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MachineRepairMultiServer,
    ::testing::Values(std::make_tuple(2u, 1.0, 1.0),
                      std::make_tuple(4u, 0.5, 1.0),
                      std::make_tuple(4u, 2.0, 3.0),
                      std::make_tuple(8u, 0.25, 0.5),
                      std::make_tuple(16u, 1.0, 2.0)));

TEST(MultiServer, AgreesWithLoadDependentRecursion) {
  const ClosedNetwork net(
      {Station{"cpu", 1.0, 8, StationKind::kQueueing},
       Station{"disk", 1.0, 1, StationKind::kQueueing},
       Station{"db", 1.0, 4, StationKind::kQueueing}},
      2.0);
  const std::vector<double> s{0.04, 0.012, 0.06};
  const std::vector<RateMultiplier> rates{multiserver_rate(8),
                                          multiserver_rate(1),
                                          multiserver_rate(4)};
  const auto ms = exact_multiserver_mva(net, s, 150);
  const auto ld = load_dependent_mva(net, s, rates, 150);
  for (unsigned n : {1u, 5u, 20u, 60u, 100u, 150u}) {
    const double a = ms.throughput[ms.row_for(n)];
    const double b = ld.throughput[ld.row_for(n)];
    EXPECT_NEAR(a, b, 0.01 * b) << "n=" << n;
  }
}

TEST(MultiServer, ThroughputMonotoneAndBottleneckBounded) {
  const ClosedNetwork net(
      {Station{"cpu", 1.0, 8, StationKind::kQueueing},
       Station{"disk", 1.0, 1, StationKind::kQueueing}},
      1.0);
  const std::vector<double> s{0.08, 0.012};
  const auto r = exact_multiserver_mva(net, s, 400);
  double prev = 0.0;
  for (std::size_t i = 0; i < r.levels(); ++i) {
    // Near saturation the stabilized marginal-probability recursion can dip
    // by a fraction of a percent; require monotonicity up to that noise.
    EXPECT_GE(r.throughput[i], prev * (1.0 - 2e-3));
    prev = std::max(prev, r.throughput[i]);
    // Capacity bound: min over stations of C_k / D_k (up to the same
    // saturation-region numerical noise).
    EXPECT_LE(r.throughput[i],
              std::min(8.0 / 0.08, 1.0 / 0.012) * (1.0 + 1e-3));
  }
  EXPECT_NEAR(r.throughput.back(), 1.0 / 0.012, 0.05 / 0.012);
}

TEST(MultiServer, MarginalTraceIsDistribution) {
  const auto net = single_station(4, 1.0);
  const std::vector<double> s{0.5};
  MarginalProbabilityTrace trace;
  const auto r =
      exact_multiserver_mva_traced(net, s, 60, "st", trace);
  ASSERT_EQ(trace.rows.size(), 60u);
  for (const auto& row : trace.rows) {
    ASSERT_EQ(row.size(), 4u);
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, -1e-12);
      EXPECT_LE(p, 1.0 + 1e-12);
      sum += p;
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
  }
  (void)r;
}

TEST(MultiServer, MarginalsVanishAtSaturation) {
  // Saturated 4-core station: queueing dominates and P(j < C) -> 0.
  const auto net = single_station(4, 0.5);
  const std::vector<double> s{1.0};
  MarginalProbabilityTrace trace;
  exact_multiserver_mva_traced(net, s, 100, "st", trace);
  for (double p : trace.rows.back()) {
    EXPECT_NEAR(p, 0.0, 1e-6);
  }
}

TEST(MultiServer, NormalizedSingleServerDistortsLightLoad) {
  // Fig. 8's root cause: dividing the demand by the core count erases the
  // service-time floor.  At light load a job on the real C-server station
  // still needs the full S seconds (R = S below C customers), while the
  // normalized model promises S/C — so the normalization *underestimates*
  // response time and *overestimates* throughput before saturation.  Both
  // models share the C/S saturation ceiling.
  const auto ms_net = single_station(8, 1.0);
  const auto ss_net = single_station(1, 1.0);
  const auto ms = exact_multiserver_mva(ms_net, std::vector<double>{0.8}, 200);
  const auto ss = exact_mva(ss_net, std::vector<double>{0.1}, 200);
  // At n <= C, the multi-server station has no queueing at all: R = S.
  EXPECT_NEAR(ms.response_time[ms.row_for(6)], 0.8, 0.01);
  EXPECT_LT(ss.response_time[ss.row_for(6)], 0.2);
  EXPECT_GT(ss.throughput[ss.row_for(6)], ms.throughput[ms.row_for(6)]);
  // Same asymptote: C / S = 10.
  EXPECT_NEAR(ms.throughput.back(), 10.0, 0.1);
  EXPECT_NEAR(ss.throughput.back(), 10.0, 0.1);
}

// ------------------------------------------------------------ DemandModel

TEST(DemandModel, ConstantModel) {
  const auto m = DemandModel::constant({0.1, 0.2});
  EXPECT_TRUE(m.is_constant());
  EXPECT_EQ(m.stations(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 5.0), 0.1);
  EXPECT_DOUBLE_EQ(m.at(1, 500.0), 0.2);
  EXPECT_EQ(m.all_at(1.0), (std::vector<double>{0.1, 0.2}));
}

TEST(DemandModel, InterpolatedEvaluatesSpline) {
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({1, 10}, {1.0, 0.5})));
  const auto m = DemandModel::interpolated({spline});
  EXPECT_DOUBLE_EQ(m.at(0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 100.0), 0.5);  // pegged
}

TEST(DemandModel, ClampsNegativeInterpolantsToZero) {
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({0, 1}, {-1.0, -0.5})));
  const auto m = DemandModel::interpolated({spline});
  EXPECT_DOUBLE_EQ(m.at(0, 0.5), 0.0);
}

TEST(DemandModel, Validation) {
  EXPECT_THROW(DemandModel::constant({}), invalid_argument_error);
  EXPECT_THROW(DemandModel::constant({-0.1}), invalid_argument_error);
  EXPECT_THROW(DemandModel::interpolated({nullptr}), invalid_argument_error);
  const auto m = DemandModel::constant({0.1});
  EXPECT_THROW(m.at(1, 1.0), invalid_argument_error);
}

TEST(DemandModel, AllAtOutParamMatchesReturningOverload) {
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({1, 10}, {1.0, 0.5})));
  const auto m = DemandModel::interpolated({spline, spline});
  std::vector<double> out;
  for (double x : {1.0, 3.7, 10.0, 50.0}) {
    m.all_at(x, out);
    EXPECT_EQ(out, m.all_at(x)) << "x=" << x;
  }
}

// -------------------------------------------------------------- DemandGrid

/// Spline demand model through an application's ground-truth demand laws,
/// sampled at campaign-like concurrency knots — the same shape the
/// prediction pipeline feeds the solvers.
DemandModel app_spline_demands(const workload::ApplicationModel& app,
                               const std::vector<double>& knots) {
  const std::size_t k_count = app.stations().size();
  std::vector<std::shared_ptr<const interp::Interpolator1D>> splines;
  for (std::size_t k = 0; k < k_count; ++k) {
    std::vector<double> ys;
    for (double n : knots) ys.push_back(app.true_demand(k, n));
    splines.push_back(std::make_shared<interp::PiecewiseCubic>(
        interp::build_cubic_spline(interp::SampleSet(knots, ys))));
  }
  return DemandModel::interpolated(std::move(splines));
}

TEST(DemandGrid, BitIdenticalToModelAtOnVinsShapedSplines) {
  const auto app = apps::make_vins();
  const auto model =
      app_spline_demands(app, {1, 50, 200, 500, 900, 1500});
  constexpr unsigned kMax = 2000;  // runs past the knots into extrapolation
  const DemandGrid grid(model, kMax);
  ASSERT_TRUE(grid.tabulated());
  EXPECT_EQ(grid.stations(), model.stations());
  for (unsigned n = 1; n <= kMax; ++n) {
    const double* row = grid.row(n);
    for (std::size_t k = 0; k < model.stations(); ++k) {
      ASSERT_EQ(row[k], model.at(k, static_cast<double>(n)))
          << "n=" << n << " k=" << k;
      ASSERT_EQ(grid.at(n, k), row[k]);
    }
  }
}

TEST(DemandGrid, BitIdenticalToModelAtOnJPetStoreShapedSplines) {
  const auto app = apps::make_jpetstore();
  const auto model = app_spline_demands(app, {1, 40, 120, 200, 280});
  constexpr unsigned kMax = 400;
  const DemandGrid grid(model, kMax);
  ASSERT_TRUE(grid.tabulated());
  for (unsigned n = 1; n <= kMax; ++n) {
    for (std::size_t k = 0; k < model.stations(); ++k) {
      ASSERT_EQ(grid.at(n, k), model.at(k, static_cast<double>(n)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(DemandGrid, ConstantModelTabulates) {
  const auto m = DemandModel::constant({0.1, 0.2, 0.3});
  const DemandGrid grid(m, 100);
  ASSERT_TRUE(grid.tabulated());
  for (unsigned n : {1u, 42u, 100u}) {
    EXPECT_DOUBLE_EQ(grid.at(n, 0), 0.1);
    EXPECT_DOUBLE_EQ(grid.at(n, 1), 0.2);
    EXPECT_DOUBLE_EQ(grid.at(n, 2), 0.3);
  }
}

TEST(DemandGrid, ThroughputAxisEvalIntoMatchesModelAt) {
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(
          interp::SampleSet({0.5, 25.0, 50.0}, {0.02, 0.015, 0.012})));
  const auto m = DemandModel::interpolated(
      {spline, spline}, DemandModel::Axis::kThroughput);
  const DemandGrid grid(m, 100);
  EXPECT_FALSE(grid.tabulated());
  std::vector<double> out(2);
  // MVA feeds non-decreasing throughputs; verify against the slow path.
  for (double x : {0.0, 0.5, 3.0, 17.5, 25.0, 44.0, 49.9, 60.0, 80.0}) {
    grid.eval_into(x, out.data());
    for (std::size_t k = 0; k < 2; ++k) {
      ASSERT_EQ(out[k], m.at(k, x)) << "x=" << x << " k=" << k;
    }
  }
}

TEST(DemandGrid, ClampsNegativeSplineValuesLikeModelAt) {
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({0, 10}, {-1.0, -0.5})));
  const auto m = DemandModel::interpolated({spline});
  const DemandGrid grid(m, 10);
  for (unsigned n = 1; n <= 10; ++n) {
    EXPECT_DOUBLE_EQ(grid.at(n, 0), 0.0);
  }
}

// ------------------------------------------------------------------ MVASD

TEST(Mvasd, ConstantDemandsReproduceAlgorithm2Exactly) {
  const ClosedNetwork net(
      {Station{"cpu", 1.0, 8, StationKind::kQueueing},
       Station{"disk", 1.0, 1, StationKind::kQueueing}},
      1.0);
  const std::vector<double> s{0.06, 0.015};
  const auto fixed = exact_multiserver_mva(net, s, 120);
  const auto varying = mvasd(net, DemandModel::constant(s), 120);
  for (std::size_t i = 0; i < fixed.levels(); ++i) {
    EXPECT_DOUBLE_EQ(fixed.throughput[i], varying.throughput[i]);
    EXPECT_DOUBLE_EQ(fixed.response_time[i], varying.response_time[i]);
  }
}

TEST(Mvasd, DecreasingDemandLiftsThroughputCeiling) {
  const auto net = single_station(1, 1.0);
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(
          interp::SampleSet({1, 100, 200}, {0.02, 0.012, 0.01})));
  const auto adaptive = mvasd(net, DemandModel::interpolated({spline}), 300);
  const auto fixed =
      exact_multiserver_mva(net, std::vector<double>{0.02}, 300);
  // Constant-demand model saturates at 1/0.02 = 50; MVASD reaches ~1/0.01.
  EXPECT_NEAR(fixed.throughput.back(), 50.0, 0.5);
  EXPECT_GT(adaptive.throughput.back(), 90.0);
}

TEST(Mvasd, FinalThroughputTracksFinalDemand) {
  // Past the sampled range the pegged spline holds D(n) = D_final, so the
  // saturated throughput must be 1/D_final.
  const auto net = single_station(1, 0.5);
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(
          interp::SampleSet({1, 50}, {0.05, 0.04})));
  const auto r = mvasd(net, DemandModel::interpolated({spline}), 400);
  EXPECT_NEAR(r.throughput.back(), 25.0, 0.2);
}

TEST(Mvasd, ThroughputAxisModelRuns) {
  const auto net = single_station(1, 1.0);
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(
          interp::SampleSet({0.5, 25.0, 50.0}, {0.02, 0.015, 0.012})));
  const auto r = mvasd(
      net,
      DemandModel::interpolated({spline}, DemandModel::Axis::kThroughput),
      200);
  // Saturation: demand at the saturated X (~1/0.012) pegs to 0.012.
  EXPECT_NEAR(r.throughput.back(), 1.0 / 0.012, 1.5);
  // Monotone non-decreasing throughput even with the feedback lookup.
  for (std::size_t i = 1; i < r.levels(); ++i) {
    EXPECT_GE(r.throughput[i], r.throughput[i - 1] - 1e-6);
  }
}

TEST(Mvasd, SingleServerVariantMatchesMvasdWhenAllSingleServer) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.0);
  auto sp1 = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({1, 100}, {0.05, 0.04})));
  auto sp2 = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({1, 100}, {0.02, 0.015})));
  const auto model = DemandModel::interpolated({sp1, sp2});
  const auto a = mvasd(net, model, 80);
  const auto b = mvasd_single_server(net, model, 80);
  for (std::size_t i = 0; i < a.levels(); ++i) {
    EXPECT_NEAR(a.throughput[i], b.throughput[i], 1e-9);
  }
}

TEST(Mvasd, SingleServerNormalizationUnderestimatesMultiServerResponse) {
  // Fig. 8's lesson: at light load the normalized model is optimistic about
  // response time (no multi-server parallelism modeling error there —
  // it *underestimates* R because S/C < S even when no queueing occurs).
  const auto net = single_station(8, 1.0);
  const auto model = DemandModel::constant({0.8});
  const auto ms = mvasd(net, model, 8);
  const auto ss = mvasd_single_server(net, model, 8);
  EXPECT_LT(ss.response_time[ss.row_for(4)], ms.response_time[ms.row_for(4)]);
}

TEST(Mvasd, TracedVariantExposesMarginals) {
  const auto net = single_station(4, 1.0);
  MarginalProbabilityTrace trace;
  const auto model = DemandModel::constant({0.4});
  mvasd_traced(net, model, 30, "st", trace);
  ASSERT_EQ(trace.rows.size(), 30u);
  ASSERT_EQ(trace.rows.front().size(), 4u);
}

// ---------------------------------------------------------- load-dependent

TEST(LoadDependent, SingleServerRateMatchesExactMva) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.0);
  const std::vector<double> s{0.1, 0.2};
  const auto ld = load_dependent_mva(
      net, s, {single_server_rate(), single_server_rate()}, 40);
  const auto ex = exact_mva(net, s, 40);
  for (std::size_t i = 0; i < ld.levels(); ++i) {
    EXPECT_NEAR(ld.throughput[i], ex.throughput[i], 1e-9);
  }
}

TEST(LoadDependent, FasterRatesRaiseThroughput) {
  const auto net = single_station(1, 1.0);
  const std::vector<double> s{0.5};
  const auto slow = load_dependent_mva(net, s, {single_server_rate()}, 30);
  const auto fast = load_dependent_mva(net, s, {multiserver_rate(4)}, 30);
  EXPECT_GT(fast.throughput.back(), slow.throughput.back());
}

TEST(LoadDependent, RejectsNonPositiveRate) {
  const auto net = single_station(1, 1.0);
  EXPECT_THROW(load_dependent_mva(net, std::vector<double>{0.5},
                                  {[](unsigned) { return 0.0; }}, 5),
               invalid_argument_error);
}

TEST(LoadDependent, ProfileOverloadMatchesRateClosures) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.0);
  const std::vector<double> s{0.1, 0.2};
  // alpha(j) = min(j, 4) as an explicit vector vs the closure.
  const auto from_profile = load_dependent_mva(
      net, s,
      std::vector<std::vector<double>>{{1.0, 2.0, 3.0, 4.0}, {1.0}}, 40);
  const auto from_closure = load_dependent_mva(
      net, s, {multiserver_rate(4), single_server_rate()}, 40);
  EXPECT_EQ(from_profile.throughput, from_closure.throughput);
  EXPECT_EQ(from_profile.station_queue, from_closure.station_queue);
}

TEST(LoadDependent, ProfileShorterThanPopulationClampsAtItsLastEntry) {
  // A 3-entry profile on a 30-customer solve: populations past 3 run at
  // the profile's final rate — pin this truncation behavior against the
  // equivalent closure.
  const auto net = single_station(1, 1.0);
  const std::vector<double> s{0.5};
  const std::vector<double> profile{1.0, 1.8, 2.4};
  const auto truncated = load_dependent_mva(
      net, s, std::vector<std::vector<double>>{profile}, 30);
  const auto closure = load_dependent_mva(
      net, s,
      {[&profile](unsigned jobs) {
        return profile[std::min<std::size_t>(jobs, profile.size()) - 1];
      }},
      30);
  EXPECT_EQ(truncated.throughput, closure.throughput);
  // And the clamp really binds: a longer, still-rising profile does better.
  const auto longer = load_dependent_mva(
      net, s, std::vector<std::vector<double>>{{1.0, 1.8, 2.4, 3.0}}, 30);
  EXPECT_GT(longer.throughput.back(), truncated.throughput.back());
}

TEST(LoadDependent, ProfileOverloadSingleStationMatchesExact) {
  const auto net = single_station(1, 2.0);
  const std::vector<double> s{0.25};
  const auto ld = load_dependent_mva(
      net, s, std::vector<std::vector<double>>{{1.0}}, 20);
  const auto ex = exact_mva(net, s, 20);
  for (std::size_t i = 0; i < ld.levels(); ++i) {
    EXPECT_NEAR(ld.throughput[i], ex.throughput[i], 1e-12);
  }
}

TEST(LoadDependent, ProfileOverloadRejectsBadProfilesNamingTheStation) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.0);
  const std::vector<double> s{0.1, 0.2};
  const auto message = [&](std::vector<std::vector<double>> profiles) {
    try {
      load_dependent_mva(net, s, profiles, 10);
    } catch (const invalid_argument_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message({{1.0}, {}}).find("station 'b': rate profile is empty"),
            std::string::npos);
  EXPECT_NE(message({{1.0, 0.0}, {1.0}})
                .find("station 'a': rate multiplier at population 2"),
            std::string::npos);
  EXPECT_NE(message({{1.0}, {1.0, 2.0, 1.5}})
                .find("station 'b': rate profile decreases at population 3"),
            std::string::npos);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(message({{nan}, {1.0}}).find("station 'a'"), std::string::npos);
}

// --------------------------------------------------------------- Seidmann

TEST(Seidmann, TransformSplitsMultiServerStations) {
  const ClosedNetwork net(
      {Station{"cpu", 1.0, 4, StationKind::kQueueing},
       Station{"disk", 1.0, 1, StationKind::kQueueing}},
      1.0);
  const std::vector<double> s{0.4, 0.1};
  const auto t = seidmann_transform(net, s);
  ASSERT_EQ(t.network.size(), 3u);
  EXPECT_EQ(t.network.station(0).name, "cpu/queue");
  EXPECT_EQ(t.network.station(1).name, "cpu/delay");
  EXPECT_EQ(t.network.station(1).kind, StationKind::kDelay);
  EXPECT_EQ(t.network.station(2).name, "disk");
  EXPECT_DOUBLE_EQ(t.service_times[0], 0.1);        // S/C
  EXPECT_DOUBLE_EQ(t.service_times[1], 0.3);        // S(C-1)/C
  EXPECT_DOUBLE_EQ(t.service_times[2], 0.1);
  EXPECT_EQ(t.queueing_leg, (std::vector<std::size_t>{0, 2}));
}

TEST(Seidmann, SingleServerNetworkUnchanged) {
  const auto net = make_network({"a"}, {1}, 1.0);
  const std::vector<double> s{0.2};
  const auto a = seidmann_mva(net, s, 20);
  const auto b = exact_mva(net, s, 20);
  for (std::size_t i = 0; i < a.levels(); ++i) {
    EXPECT_DOUBLE_EQ(a.throughput[i], b.throughput[i]);
  }
}

TEST(Seidmann, ApproximatesExactMultiServerReasonably) {
  const auto net = single_station(4, 2.0);
  const std::vector<double> s{1.0};
  const auto approx = seidmann_mva(net, s, 40);
  const auto exact = exact_multiserver_mva(net, s, 40);
  for (unsigned n : {1u, 4u, 10u, 25u, 40u}) {
    const double a = approx.throughput[approx.row_for(n)];
    const double e = exact.throughput[exact.row_for(n)];
    EXPECT_NEAR(a, e, 0.15 * e) << "n=" << n;  // it is an approximation
  }
  // Both saturate at C/S.
  EXPECT_NEAR(approx.throughput.back(), 4.0, 0.15);
}

TEST(Seidmann, SchweitzerVariantRuns) {
  const auto net = single_station(4, 2.0);
  const std::vector<double> s{1.0};
  const auto r = seidmann_schweitzer_mva(net, s, 30);
  EXPECT_EQ(r.levels(), 30u);
  EXPECT_LE(r.throughput.back(), 4.0 + 1e-6);
}

// ----------------------------------------------------------------- result

TEST(Result, RowLookupAndSeries) {
  const auto net = make_network({"a", "b"}, {1, 1}, 1.0);
  const auto r = exact_mva(net, std::vector<double>{0.1, 0.2}, 10);
  EXPECT_EQ(r.row_for(7), 6u);
  EXPECT_THROW(r.row_for(11), invalid_argument_error);
  EXPECT_EQ(r.utilization_series(1).size(), 10u);
  EXPECT_EQ(r.queue_series(0).size(), 10u);
  EXPECT_THROW(r.utilization_series(5), invalid_argument_error);
  const auto xs = r.throughput_at({1.0, 5.0, 10.0});
  EXPECT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], r.throughput[0]);
  EXPECT_THROW(r.throughput_at({42.0}), invalid_argument_error);
}

// ------------------------------------------------------------------ sweep

TEST(Sweep, PreservesOrderSequentialAndParallel) {
  const auto net = make_network({"a"}, {1}, 1.0);
  auto make = [&](double s) {
    ScenarioSpec spec;
    spec.label = s > 0.2 ? "slow" : "fast";
    spec.network = net;
    spec.demands = DemandModel::constant({s});
    spec.options.solver = SolverKind::kExactSingleServer;
    spec.options.max_population = 5;
    return spec;
  };
  const std::vector<ScenarioSpec> scenarios{make(0.4), make(0.1)};
  const auto seq = run_scenarios(scenarios);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].label, "slow");
  EXPECT_LT(seq[0].result.throughput.back(), seq[1].result.throughput.back());

  ThreadPool pool(2);
  const auto par = run_scenarios(scenarios, &pool);
  ASSERT_EQ(par.size(), 2u);
  EXPECT_EQ(par[1].label, "fast");
  EXPECT_DOUBLE_EQ(par[0].result.throughput.back(),
                   seq[0].result.throughput.back());
}

// The deprecated std::function form must keep working until removal.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
TEST(Sweep, LegacyScenarioShimStillRuns) {
  const auto net = make_network({"a"}, {1}, 1.0);
  std::vector<Scenario> scenarios{
      {"one", [&] { return exact_mva(net, std::vector<double>{0.3}, 5); }}};
  const auto out = run_scenarios(std::move(scenarios));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].label, "one");
  EXPECT_EQ(out[0].result.levels(), 5u);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace mtperf::core
