// Randomized property sweeps over the MVA family: invariants that must
// hold on *any* well-formed closed network, checked over dozens of
// generated topologies.  These catch the failure modes unit tests anchored
// to hand-picked networks cannot.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "core/demand_model.hpp"
#include "core/mva_exact.hpp"
#include "core/mva_interval.hpp"
#include "core/mva_load_dependent.hpp"
#include "core/mva_multiclass.hpp"
#include "core/mva_multiserver.hpp"
#include "core/mva_schweitzer.hpp"
#include "core/mvasd.hpp"
#include "core/network.hpp"
#include "core/solve.hpp"
#include "interp/cubic_spline.hpp"
#include "ops/bounds.hpp"

namespace mtperf::core {
namespace {

struct RandomCase {
  ClosedNetwork network;
  std::vector<double> demands;
  unsigned max_population;
};

RandomCase make_case(std::uint64_t seed) {
  Rng rng(seed);
  const auto k_count = 1 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  std::vector<Station> stations;
  std::vector<double> demands;
  for (std::size_t k = 0; k < k_count; ++k) {
    Station st;
    st.name = "s" + std::to_string(k);
    st.visits = 1.0;
    const auto pick = rng.uniform_int(0, 3);
    st.servers = pick == 0 ? 1u : static_cast<unsigned>(rng.uniform_int(2, 16));
    st.kind = (k > 0 && rng.bernoulli(0.15)) ? StationKind::kDelay
                                             : StationKind::kQueueing;
    stations.push_back(st);
    demands.push_back(rng.uniform(0.001, 0.2));
  }
  const double z = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.1, 3.0);
  const auto n = static_cast<unsigned>(rng.uniform_int(5, 120));
  return RandomCase{ClosedNetwork(std::move(stations), z), std::move(demands),
                    n};
}

class RandomNetworks : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetworks, LittlesLawAndConservationHold) {
  const RandomCase c = make_case(1000 + GetParam());
  const auto r = exact_multiserver_mva(c.network, c.demands, c.max_population);
  for (std::size_t i = 0; i < r.levels(); ++i) {
    // Little's law at the system level.
    EXPECT_NEAR(r.throughput[i] * r.cycle_time[i],
                static_cast<double>(r.population[i]), 1e-7);
    // Customer conservation: queues + thinking customers = population.
    double total = r.throughput[i] * c.network.think_time();
    for (std::size_t k = 0; k < c.network.size(); ++k) {
      total += r.queue(i, k);
    }
    EXPECT_NEAR(total, static_cast<double>(r.population[i]), 1e-6);
  }
}

TEST_P(RandomNetworks, ThroughputMonotoneAndCapacityBounded) {
  const RandomCase c = make_case(2000 + GetParam());
  const auto r = exact_multiserver_mva(c.network, c.demands, c.max_population);
  double capacity = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < c.network.size(); ++k) {
    const Station& st = c.network.station(k);
    if (st.kind == StationKind::kQueueing && c.demands[k] > 0.0) {
      capacity = std::min(capacity,
                          static_cast<double>(st.servers) / c.demands[k]);
    }
  }
  double prev = 0.0;
  for (std::size_t i = 0; i < r.levels(); ++i) {
    EXPECT_GE(r.throughput[i], prev * (1.0 - 5e-3)) << "i=" << i;
    prev = std::max(prev, r.throughput[i]);
    EXPECT_LE(r.throughput[i], capacity * (1.0 + 5e-3)) << "i=" << i;
    for (std::size_t k = 0; k < r.stations(); ++k) {
      const double u = r.utilization(i, k);
      EXPECT_LE(u, 1.0 + 5e-3);
      EXPECT_GE(u, 0.0);
    }
  }
}

TEST_P(RandomNetworks, MultiServerAgreesWithLoadDependent) {
  const RandomCase c = make_case(3000 + GetParam());
  std::vector<RateMultiplier> rates;
  for (const auto& st : c.network.stations()) {
    rates.push_back(multiserver_rate(st.servers));
  }
  const auto ms = exact_multiserver_mva(c.network, c.demands,
                                        c.max_population);
  const auto ld =
      load_dependent_mva(c.network, c.demands, rates, c.max_population);
  for (std::size_t i = 0; i < ms.levels(); ++i) {
    EXPECT_NEAR(ms.throughput[i], ld.throughput[i],
                0.02 * std::max(ms.throughput[i], 1e-9))
        << "population " << ms.population[i];
  }
}

TEST_P(RandomNetworks, SchweitzerTracksExactOnSingleServerNetworks) {
  RandomCase c = make_case(4000 + GetParam());
  // Restrict to single-server queueing stations (Schweitzer's setting).
  std::vector<Station> stations = c.network.stations();
  for (auto& st : stations) st.servers = 1;
  const ClosedNetwork net(std::move(stations), c.network.think_time());
  const auto exact = exact_mva(net, c.demands, c.max_population);
  const auto approx = schweitzer_mva(net, c.demands, c.max_population);
  for (unsigned n :
       {1u, c.max_population / 2 + 1, c.max_population}) {
    const double e = exact.throughput[exact.row_for(n)];
    const double a = approx.throughput[approx.row_for(n)];
    EXPECT_NEAR(a, e, 0.08 * e) << "n=" << n;
  }
}

TEST_P(RandomNetworks, AsymptoticBoundsContainExactSolution) {
  const RandomCase c = make_case(5000 + GetParam());
  // Single-server view for the classic bounds; delay-station demands are
  // pure latency and belong in the think-time term, not in the queueing
  // demands (they would otherwise spuriously tighten the balanced bound).
  std::vector<Station> stations = c.network.stations();
  for (auto& st : stations) st.servers = 1;
  const ClosedNetwork net(std::move(stations), c.network.think_time());
  const auto r = exact_mva(net, c.demands, c.max_population);
  std::vector<double> queueing_demands;
  double z = c.network.think_time();
  for (std::size_t k = 0; k < net.size(); ++k) {
    if (net.station(k).kind == StationKind::kDelay) {
      z += c.demands[k];
    } else {
      queueing_demands.push_back(c.demands[k]);
    }
  }
  if (queueing_demands.empty()) return;  // pure-delay network: no bounds
  ops::BoundsInput in{queueing_demands, z};
  for (std::size_t i = 0; i < r.levels(); ++i) {
    const auto n = static_cast<double>(r.population[i]);
    EXPECT_LE(r.throughput[i], ops::throughput_upper_bound(in, n) + 1e-9);
    EXPECT_GE(r.response_time[i],
              ops::response_time_lower_bound(in, n) - 1e-9);
    const auto bjb = ops::balanced_job_bounds(in, n);
    EXPECT_GE(r.throughput[i], bjb.throughput_lower - 1e-9);
    EXPECT_LE(r.throughput[i], bjb.throughput_upper + 1e-9);
  }
}

TEST_P(RandomNetworks, IntervalMvaBracketsInteriorDemandVectors) {
  const RandomCase c = make_case(6000 + GetParam());
  Rng rng(7000 + GetParam());
  const auto intervals = intervals_around(c.demands, 0.15);
  const auto banded = interval_mva(c.network, intervals, c.max_population);
  // Any demand vector inside the box must produce results inside the band.
  std::vector<double> inner(c.demands);
  for (double& d : inner) d *= rng.uniform(0.85, 1.15);
  const auto mid = exact_multiserver_mva(c.network, inner, c.max_population);
  for (unsigned n : {1u, c.max_population}) {
    const std::size_t i = mid.row_for(n);
    EXPECT_LE(banded.pessimistic.throughput[i],
              mid.throughput[i] * (1.0 + 1e-6));
    EXPECT_GE(banded.optimistic.throughput[i],
              mid.throughput[i] * (1.0 - 1e-6));
  }
}

TEST_P(RandomNetworks, MvasdWithConstantSplineEqualsConstantModel) {
  const RandomCase c = make_case(8000 + GetParam());
  // A spline through constant samples is the constant function, so MVASD
  // must reproduce the fixed-demand solution exactly.
  std::vector<std::shared_ptr<const interp::Interpolator1D>> interpolants;
  for (double d : c.demands) {
    interpolants.push_back(std::make_shared<interp::PiecewiseCubic>(
        interp::build_cubic_spline(
            interp::SampleSet({1.0, 10.0, 100.0}, {d, d, d}))));
  }
  const auto varying = mvasd(
      c.network, DemandModel::interpolated(std::move(interpolants)),
      c.max_population);
  const auto fixed =
      exact_multiserver_mva(c.network, c.demands, c.max_population);
  for (std::size_t i = 0; i < fixed.levels(); ++i) {
    EXPECT_NEAR(varying.throughput[i], fixed.throughput[i],
                1e-9 * std::max(1.0, fixed.throughput[i]));
  }
}

TEST_P(RandomNetworks, MulticlassSplitInvariance) {
  // Splitting one class into two identical halves must not change totals.
  RandomCase c = make_case(9000 + GetParam());
  std::vector<Station> stations = c.network.stations();
  for (auto& st : stations) st.servers = 1;  // multiclass setting
  const ClosedNetwork net(std::move(stations), c.network.think_time());
  const unsigned n = std::min(c.max_population, 24u) | 1u;  // keep it odd+small
  const std::vector<CustomerClass> merged{
      {"all", n, net.think_time(), c.demands}};
  const std::vector<CustomerClass> split{
      {"a", n / 2, net.think_time(), c.demands},
      {"b", n - n / 2, net.think_time(), c.demands}};
  const auto one = exact_mva_multiclass(net, merged);
  const auto two = exact_mva_multiclass(net, split);
  EXPECT_NEAR(one.total_throughput(), two.total_throughput(),
              1e-8 * std::max(1.0, one.total_throughput()));
}

TEST_P(RandomNetworks, MulticlassSolversAgreeOnRandomSmallMixes) {
  // MoM is exact: on mixes small enough for the population-vector
  // recursion the two must agree to solver tolerance, and Schweitzer must
  // land in the neighborhood.  Random demands scale per class so the
  // classes genuinely differ.
  const RandomCase c = make_case(10000 + GetParam());
  Rng rng(11000 + GetParam());
  std::vector<Station> stations = c.network.stations();
  for (auto& st : stations) st.servers = 1;  // multiclass setting
  const ClosedNetwork net(std::move(stations), c.network.think_time());
  const std::size_t class_count = 2 + GetParam() % 2;
  std::vector<CustomerClass> classes;
  for (std::size_t i = 0; i < class_count; ++i) {
    std::vector<double> demands = c.demands;
    const double scale = rng.uniform(0.3, 1.5);
    for (double& d : demands) d *= scale;
    classes.push_back({"c" + std::to_string(i),
                       static_cast<unsigned>(rng.uniform_int(1, 6)),
                       rng.uniform(0.0, 2.0), std::move(demands), nullptr});
  }
  const MvaResult exact = exact_multiclass_series(net, classes);
  const MvaResult mom = mom_multiclass(net, classes);
  const std::size_t top = exact.levels() - 1;
  ASSERT_EQ(mom.classes(), exact.classes());
  EXPECT_NEAR(mom.throughput[0], exact.throughput[top],
              1e-9 * std::max(1.0, exact.throughput[top]));
  for (std::size_t i = 0; i < class_count; ++i) {
    EXPECT_NEAR(mom.class_x(0, i), exact.class_x(top, i),
                1e-9 * std::max(1.0, exact.class_x(top, i)))
        << "class " << i;
  }
  // Schweitzer is approximate and weakest at tiny populations: a loose
  // bracket that still catches sign- and indexing-level bugs.
  const MvaResult schweitzer = schweitzer_multiclass_series(net, classes);
  const std::size_t s_top = schweitzer.levels() - 1;
  EXPECT_NEAR(schweitzer.throughput[s_top], exact.throughput[top],
              0.25 * std::max(1.0, exact.throughput[top]));
}

TEST_P(RandomNetworks, SingleClassMulticlassSpecMatchesMvasd) {
  // One class over a random single-server network must collapse to the
  // single-class recursion (the facade's bit-parity contract, checked on
  // fixtures in test_multiclass; here over random topologies).
  const RandomCase c = make_case(12000 + GetParam());
  std::vector<Station> stations = c.network.stations();
  for (auto& st : stations) st.servers = 1;
  const ClosedNetwork net(std::move(stations), c.network.think_time());
  const unsigned n = std::min(c.max_population, 40u);
  const std::vector<CustomerClass> classes{
      {"only", n, net.think_time(), c.demands, nullptr}};
  SolveOptions mc_options;
  mc_options.solver = SolverKind::kExactMulticlass;
  mc_options.classes = classes;
  finalize_multiclass_options(mc_options);
  const MvaResult mc = solve(net, nullptr, mc_options);
  const MvaResult sc =
      solve(net, DemandModel::constant(c.demands), {SolverKind::kMvasd, n});
  ASSERT_EQ(mc.levels(), sc.levels());
  for (std::size_t i = 0; i < sc.levels(); ++i) {
    EXPECT_EQ(mc.throughput[i], sc.throughput[i]) << "level " << i;
    EXPECT_EQ(mc.cycle_time[i], sc.cycle_time[i]) << "level " << i;
    for (std::size_t k = 0; k < sc.stations(); ++k) {
      EXPECT_EQ(mc.queue(i, k), sc.queue(i, k));
      EXPECT_EQ(mc.utilization(i, k), sc.utilization(i, k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomNetworks, ::testing::Range(0, 12));

TEST(NetworkAscii, SketchMentionsEveryStation) {
  const ClosedNetwork net(
      {Station{"cpu", 2.0, 8, StationKind::kQueueing},
       Station{"lan", 1.0, 1, StationKind::kDelay}},
      1.5);
  const std::string sketch = network_ascii(net);
  EXPECT_NE(sketch.find("cpu"), std::string::npos);
  EXPECT_NE(sketch.find("8 servers"), std::string::npos);
  EXPECT_NE(sketch.find("delay"), std::string::npos);
  EXPECT_NE(sketch.find("V=2"), std::string::npos);
  EXPECT_NE(sketch.find("Z = 1.5"), std::string::npos);
}

}  // namespace
}  // namespace mtperf::core
