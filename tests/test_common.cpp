// Unit tests for mtperf::common — statistics, RNG, formatting, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <random>
#include <set>
#include <thread>

#include "common/ascii_chart.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace mtperf {
namespace {

// ---------------------------------------------------------------- RunningStats

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.5);
  EXPECT_DOUBLE_EQ(s.max(), 42.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

// ---------------------------------------------------------------- t quantile

TEST(StudentT, MatchesTabulatedValues) {
  // Two-sided 95% critical values from standard tables.
  EXPECT_NEAR(student_t_quantile(1, 0.95), 12.706, 0.01);
  EXPECT_NEAR(student_t_quantile(2, 0.95), 4.303, 0.005);
  EXPECT_NEAR(student_t_quantile(5, 0.95), 2.571, 0.01);
  EXPECT_NEAR(student_t_quantile(10, 0.95), 2.228, 0.01);
  EXPECT_NEAR(student_t_quantile(30, 0.95), 2.042, 0.01);
  EXPECT_NEAR(student_t_quantile(120, 0.95), 1.980, 0.01);
}

TEST(StudentT, MatchesTabulated99) {
  EXPECT_NEAR(student_t_quantile(10, 0.99), 3.169, 0.02);
  EXPECT_NEAR(student_t_quantile(30, 0.99), 2.750, 0.02);
}

TEST(StudentT, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(student_t_quantile(100000, 0.95), 1.95996, 1e-3);
}

TEST(StudentT, RejectsBadInputs) {
  EXPECT_THROW(student_t_quantile(0, 0.95), invalid_argument_error);
  EXPECT_THROW(student_t_quantile(5, 0.0), invalid_argument_error);
  EXPECT_THROW(student_t_quantile(5, 1.0), invalid_argument_error);
}

// ---------------------------------------------------------------- BatchMeans

TEST(BatchMeans, MeanMatchesStream) {
  BatchMeans bm(10);
  RunningStats ref;
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(2.0);
    bm.add(x);
    ref.add(x);
  }
  EXPECT_EQ(bm.observations(), 50000u);
  EXPECT_NEAR(bm.mean(), ref.mean(), 1e-12);
}

TEST(BatchMeans, IntervalCoversTrueMeanForIidData) {
  // With i.i.d. exponential data the CI should cover the true mean in the
  // vast majority of replications; check a modest batch of replications.
  int covered = 0;
  const int reps = 40;
  for (int rep = 0; rep < reps; ++rep) {
    BatchMeans bm(20);
    Rng rng(1000 + rep);
    for (int i = 0; i < 20000; ++i) bm.add(rng.exponential(5.0));
    if (bm.interval(0.95).contains(5.0)) ++covered;
  }
  EXPECT_GE(covered, reps * 8 / 10);  // allow slack below nominal 95%
}

TEST(BatchMeans, ThrowsWithoutTwoCompleteBatches) {
  BatchMeans bm(10);
  bm.add(1.0);
  EXPECT_THROW(bm.interval(), invalid_argument_error);
}

TEST(BatchMeans, RejectsOddOrTinyBatchCounts) {
  EXPECT_THROW(BatchMeans(1), invalid_argument_error);
  EXPECT_THROW(BatchMeans(7), invalid_argument_error);
  EXPECT_NO_THROW(BatchMeans(2));
}

TEST(BatchMeans, RebatchingPreservesTotals) {
  BatchMeans bm(4);
  // 64 * 4 fills all batches; keep adding to force several rebatches.
  double sum = 0.0;
  for (int i = 0; i < 3000; ++i) {
    bm.add(static_cast<double>(i));
    sum += i;
  }
  EXPECT_EQ(bm.observations(), 3000u);
  EXPECT_NEAR(bm.mean(), sum / 3000.0, 1e-9);
}

// ---------------------------------------------------------------- percentile

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 12.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 17.5);
}

TEST(Percentile, RejectsBadInputs) {
  EXPECT_THROW(percentile({}, 50), invalid_argument_error);
  EXPECT_THROW(percentile({1.0}, -1), invalid_argument_error);
  EXPECT_THROW(percentile({1.0}, 101), invalid_argument_error);
}

TEST(Percentile, SingleElementAnswersEveryLevel) {
  // n = 1: every level, including the closed endpoints, is that element —
  // exactly, with no interpolation arithmetic involved.
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile({42.5}, p), 42.5) << p;
  }
}

TEST(Percentile, EndpointsAreExactOrderStatistics) {
  // p = 0 and p = 100 must return the min and max *exactly* (the type-7
  // rank p/100 * (n-1) lands on an integer index; any floating-point
  // slack here would blend neighboring order statistics into SLA tails).
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(std::sin(static_cast<double>(i)) * 1e6);
  }
  const double lo = *std::min_element(v.begin(), v.end());
  const double hi = *std::max_element(v.begin(), v.end());
  EXPECT_EQ(percentile(v, 0), lo);
  EXPECT_EQ(percentile(v, 100), hi);
}

TEST(Percentiles, MatchesSingleLevelCalls) {
  const std::vector<double> original{5.0, 1.0, 3.0, 2.0, 4.0, 9.5, -2.0};
  std::vector<double> v = original;
  const auto q = percentiles(v, {0, 25, 50, 75, 90, 100});
  const std::vector<double> levels{0, 25, 50, 75, 90, 100};
  ASSERT_EQ(q.size(), levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_DOUBLE_EQ(q[i], percentile(original, levels[i])) << levels[i];
  }
}

TEST(Percentiles, SortsSampleInPlace) {
  std::vector<double> v{3.0, 1.0, 2.0};
  percentiles(v, {50});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Percentiles, RejectsBadInputs) {
  std::vector<double> empty;
  EXPECT_THROW(percentiles(empty, {50}), invalid_argument_error);
  std::vector<double> one{1.0};
  EXPECT_THROW(percentiles(one, {-1}), invalid_argument_error);
  EXPECT_THROW(percentiles(one, {50, 101}), invalid_argument_error);
}

// ------------------------------------------------- MomentAccumulator

TEST(MomentAccumulator, MergeMatchesWholeStream) {
  // Three partitions accumulated independently must merge to exactly the
  // statistics of the concatenated stream.
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> u(0.0, 10.0);
  std::vector<double> all;
  MomentAccumulator merged;
  for (int part = 0; part < 3; ++part) {
    MomentAccumulator acc;
    for (int i = 0; i < 400 + 100 * part; ++i) {
      const double x = u(gen);
      acc.add(x);
      all.push_back(x);
    }
    merged.merge(std::move(acc));
  }
  RunningStats ref;
  for (double x : all) ref.add(x);
  EXPECT_EQ(merged.count(), all.size());
  EXPECT_NEAR(merged.mean(), ref.mean(), 1e-12);
  EXPECT_NEAR(merged.moments().variance(), ref.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.moments().min(), ref.min());
  EXPECT_DOUBLE_EQ(merged.moments().max(), ref.max());
  // Percentiles over the k-way-merged runs are bit-identical to sorting
  // the pooled sample.
  const auto q = merged.percentiles({5, 50, 95, 99});
  std::vector<double> pooled = all;
  const auto expected = percentiles(pooled, {5, 50, 95, 99});
  for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(q[i], expected[i]);
}

TEST(MomentAccumulator, MergedEndpointPercentilesPinToGlobalExtremes) {
  // p ∈ {0, 100} through the k-way merged replication path must return the
  // pooled min/max exactly — the same endpoint pin percentile() gives for a
  // single run — and a single-sample accumulator answers every level.
  MomentAccumulator acc;
  acc.merge(MomentAccumulator::from_sorted({3.0, 7.0, 11.0}));
  acc.merge(MomentAccumulator::from_sorted({-2.5, 8.0}));
  acc.merge(MomentAccumulator::from_sorted({5.0}));
  const auto q = acc.percentiles({0, 100});
  EXPECT_EQ(q[0], -2.5);
  EXPECT_EQ(q[1], 11.0);
  MomentAccumulator one;
  one.add(6.25);
  const auto single = one.percentiles({0, 50, 100});
  EXPECT_EQ(single[0], 6.25);
  EXPECT_EQ(single[1], 6.25);
  EXPECT_EQ(single[2], 6.25);
}

TEST(MomentAccumulator, FromSortedValidatesAndPools) {
  const std::vector<double> run_a{1.0, 2.0, 3.0};
  const std::vector<double> run_b{0.5, 2.5};
  auto acc = MomentAccumulator::from_sorted(run_a);
  acc.merge(MomentAccumulator::from_sorted(run_b));
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.percentiles({50}).front(), 2.0);
  // Precomputed moments must match the run they claim to describe.
  RunningStats wrong;
  wrong.add(1.0);
  EXPECT_THROW(MomentAccumulator::from_sorted(run_a, wrong),
               invalid_argument_error);
  EXPECT_THROW(MomentAccumulator::from_sorted({3.0, 1.0}),
               invalid_argument_error);
}

TEST(MomentAccumulator, MeanCiMatchesStudentT) {
  MomentAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(x);
  const auto ci = acc.mean_ci(0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  // s = sqrt(2.5), n = 5, t_{4, .975} = 2.776...
  const double expected =
      student_t_quantile(4, 0.95) * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(ci.half_width, expected, 1e-12);
  MomentAccumulator single;
  single.add(7.0);
  EXPECT_DOUBLE_EQ(single.mean_ci().mean, 7.0);
  EXPECT_DOUBLE_EQ(single.mean_ci().half_width, 0.0);
}

TEST(MomentAccumulator, InterleavedAddAndMergeFlattensCorrectly) {
  MomentAccumulator acc;
  acc.add(5.0);
  acc.merge(MomentAccumulator::from_sorted({1.0, 9.0}));
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.percentiles({0}).front(), 1.0);
  EXPECT_DOUBLE_EQ(acc.percentiles({100}).front(), 9.0);
  EXPECT_DOUBLE_EQ(acc.percentiles({50}).front(), 4.0);
  EXPECT_EQ(acc.count(), 4u);
}

// ------------------------------------------------------ mean % deviation

TEST(Deviation, ZeroForIdenticalSeries) {
  EXPECT_DOUBLE_EQ(mean_percent_deviation({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Deviation, MatchesHandComputation) {
  // |10-8|/8 = 25%, |20-25|/25 = 20% -> mean 22.5%
  EXPECT_NEAR(mean_percent_deviation({10, 20}, {8, 25}), 22.5, 1e-12);
}

TEST(Deviation, SkipsZeroMeasurements) {
  EXPECT_NEAR(mean_percent_deviation({10, 5}, {0, 4}), 25.0, 1e-12);
}

TEST(Deviation, RejectsLengthMismatch) {
  EXPECT_THROW(mean_percent_deviation({1.0}, {1.0, 2.0}),
               invalid_argument_error);
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DistinctSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(0.25));
  EXPECT_NEAR(s.mean(), 0.25, 0.005);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), 0.25, 0.01);
}

TEST(Rng, ExponentialWithZeroMeanIsZero) {
  Rng rng(10);
  EXPECT_DOUBLE_EQ(rng.exponential(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(14);
  EXPECT_THROW(rng.uniform_int(5, 4), invalid_argument_error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// -------------------------------------------------------------------- Table

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("Title");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| 1 "), std::string::npos);
}

TEST(TextTable, RejectsRowWidthMismatch) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), invalid_argument_error);
}

TEST(TextTable, GroupHeaderSpansColumns) {
  TextTable t;
  t.set_group_header({{"", 1}, {"Server", 2}});
  t.set_header({"n", "cpu", "disk"});
  t.add_row({"1", "10", "20"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Server"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_percent(93.216, 1), "93.2%");
  EXPECT_EQ(fmt(static_cast<long long>(42)), "42");
}

// -------------------------------------------------------------- AsciiChart

TEST(AsciiChart, RendersSeriesAndLegend) {
  AsciiChart chart("T", "x", "y", 40, 10);
  chart.add_series({"up", {0, 1, 2, 3}, {0, 1, 2, 3}, '*'});
  const std::string s = chart.render();
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("up"), std::string::npos);
  EXPECT_NE(s.find("x: x"), std::string::npos);
}

TEST(AsciiChart, HandlesEmptyData) {
  AsciiChart chart("T", "x", "y");
  EXPECT_NE(chart.render().find("(no data)"), std::string::npos);
}

TEST(AsciiChart, RejectsMismatchedSeries) {
  AsciiChart chart("T", "x", "y");
  EXPECT_THROW(chart.add_series({"bad", {1, 2}, {1}, '*'}),
               invalid_argument_error);
}

TEST(AsciiChart, RejectsTinyGrid) {
  EXPECT_THROW(AsciiChart("T", "x", "y", 2, 2), invalid_argument_error);
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 1000, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map<std::size_t>(
      pool, 100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForManyMoreItemsThanWorkers) {
  ThreadPool pool(3);
  constexpr std::size_t n = 100000;  // n >> workers
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForSubmitsPerWorkerNotPerItem) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.tasks_submitted();
  std::atomic<int> count{0};
  parallel_for(pool, 50000, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50000);
  // Chunked dispatch: one queued task per worker, not per index.
  EXPECT_LE(pool.tasks_submitted() - before, pool.size());
}

TEST(ThreadPool, ParallelForRunsEveryIndexDespiteThrow) {
  ThreadPool pool(2);
  constexpr std::size_t n = 1000;
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, n,
                            [&](std::size_t i) {
                              ++ran;
                              if (i == 17) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // All indices are still attempted; the failure does not abandon the range.
  EXPECT_EQ(ran.load(), static_cast<int>(n));
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  const std::uint64_t before = pool.tasks_submitted();
  std::atomic<int> count{0};
  parallel_for(pool, 0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  EXPECT_EQ(pool.tasks_submitted(), before);
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(2);
  const std::uint64_t before = pool.tasks_submitted();
  std::atomic<int> count{0};
  parallel_for(pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
  EXPECT_EQ(pool.tasks_submitted(), before);  // no queue round-trip for n=1
}

TEST(ThreadPool, ParallelForSingleItemPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 1,
                   [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

// ----------------------------------------------------------- ConfidenceInterval

TEST(ConfidenceInterval, BoundsAndContainment) {
  ConfidenceInterval ci{10.0, 2.0};
  EXPECT_DOUBLE_EQ(ci.lower(), 8.0);
  EXPECT_DOUBLE_EQ(ci.upper(), 12.0);
  EXPECT_TRUE(ci.contains(9.0));
  EXPECT_FALSE(ci.contains(12.5));
  EXPECT_DOUBLE_EQ(ci.relative_half_width(), 0.2);
}

}  // namespace
}  // namespace mtperf
