// Tests for the serving pipeline: the bounded submission queue, the
// hostile-input behavior of the request core, single-flight dedup of
// concurrent identical misses, batched-vs-scalar parity, and the socket
// Server end to end (including overload shedding).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "common/socket.hpp"
#include "core/network.hpp"
#include "core/solve.hpp"
#include "core/sweep.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/request.hpp"
#include "service/server.hpp"

namespace {

using namespace mtperf;
using service::Json;

// --- helpers ---------------------------------------------------------------

core::ScenarioSpec make_spec(double demand_scale, unsigned population,
                             unsigned servers = 4) {
  std::vector<core::Station> stations;
  for (int k = 0; k < 4; ++k) {
    core::Station st;
    st.name = "st" + std::to_string(k);
    st.servers = servers;
    stations.push_back(std::move(st));
  }
  core::ScenarioSpec spec;
  spec.label = "t";
  spec.network = core::ClosedNetwork(std::move(stations), 1.0);
  spec.demands = core::DemandModel::constant(
      {0.010 * demand_scale, 0.020 * demand_scale, 0.005 * demand_scale,
       0.015 * demand_scale});
  spec.options.solver = core::SolverKind::kMvasd;
  spec.options.max_population = population;
  return spec;
}

std::string spec_request(std::uint64_t id, double demand_scale,
                         unsigned population) {
  const core::ScenarioSpec spec = make_spec(demand_scale, population);
  Json::Object request;
  request["id"] = static_cast<unsigned long long>(id);
  request["label"] = spec.label;
  request["think"] = spec.network.think_time();
  Json::Array stations;
  for (const auto& st : spec.network.stations()) {
    Json::Object js;
    js["name"] = st.name;
    js["servers"] = static_cast<unsigned long long>(st.servers);
    stations.push_back(Json(std::move(js)));
  }
  request["stations"] = Json(std::move(stations));
  Json::Object demands;
  demands["type"] = std::string("constant");
  Json::Array values;
  for (unsigned k = 0; k < 4; ++k) {
    values.emplace_back(spec.demands.at(k, 1.0));
  }
  demands["values"] = Json(std::move(values));
  request["demands"] = Json(std::move(demands));
  request["solver"] = std::string("mvasd");
  request["max_population"] = static_cast<unsigned long long>(population);
  return Json(std::move(request)).dump() + "\n";
}

// --- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueue, TryPushShedsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: fast-reject, no blocking
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_push(3));  // space again
}

TEST(BoundedQueue, PopUntilTimesOut) {
  BoundedQueue<int> q(4);
  int out = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_until(
      out, start + std::chrono::milliseconds(30)));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // closed: reject new work
  int out = 0;
  EXPECT_TRUE(q.pop(out));  // queued work still drains
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.pop(out));  // drained + closed
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&q] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

// --- hostile request lines -------------------------------------------------

TEST(RequestParsing, HostileInputsThrowInsteadOfCrashing) {
  const char* hostile[] = {
      "",                          // empty
      "{",                         // truncated object
      "{\"a\":",                   // truncated value
      "{\"a\":1,}",                // trailing comma
      "nonsense",                  // not JSON at all
      "{\"x\":NaN}",               // NaN literal is not JSON
      "{\"x\":Infinity}",          // neither is Infinity
      "{\"x\":1e999999}",          // overflows double
      "{\"x\":--5}",               // malformed number
      "{\"cmd\":\"format-disk\"}", // unknown command
      "\"just a string\"",         // not an object
      "{\"label\":\"\xff\xfe\"}",  // invalid UTF-8 in a string
  };
  for (const char* line : hostile) {
    EXPECT_THROW(service::parse_request(line), std::exception)
        << "line: " << line;
  }
}

TEST(RequestParsing, DeepNestingIsBounded) {
  std::string bomb;
  for (int i = 0; i < 2000; ++i) bomb += "[";
  EXPECT_THROW(Json::parse(bomb), std::exception);
  // At the boundary: kMaxParseDepth levels parse, one more does not.
  std::string ok, over;
  for (std::size_t i = 0; i < Json::kMaxParseDepth; ++i) {
    ok += "[";
    over += "[";
  }
  over += "[";
  for (std::size_t i = 0; i < Json::kMaxParseDepth; ++i) ok += "]";
  for (std::size_t i = 0; i < Json::kMaxParseDepth + 1; ++i) over += "]";
  EXPECT_NO_THROW(Json::parse(ok));
  EXPECT_THROW(Json::parse(over), std::exception);
}

TEST(RequestParsing, SchemaViolationsThrow) {
  // Valid JSON, invalid scenarios: the request core must reject these
  // before they reach a solver.
  const char* bad[] = {
      // no stations
      "{\"stations\":[],\"demands\":{\"type\":\"constant\",\"values\":[]},"
      "\"max_population\":10}",
      // demand count mismatch
      "{\"stations\":[{\"name\":\"a\"}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[0.1,0.2]},"
      "\"max_population\":10}",
      // negative demand
      "{\"stations\":[{\"name\":\"a\"}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[-0.1]},"
      "\"max_population\":10}",
      // zero population
      "{\"stations\":[{\"name\":\"a\"}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[0.1]},"
      "\"max_population\":0}",
      // absurd population
      "{\"stations\":[{\"name\":\"a\"}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[0.1]},"
      "\"max_population\":1e15}",
      // negative think time
      "{\"think\":-1,\"stations\":[{\"name\":\"a\"}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[0.1]},"
      "\"max_population\":10}",
      // zero servers
      "{\"stations\":[{\"name\":\"a\",\"servers\":0}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[0.1]},"
      "\"max_population\":10}",
      // unknown solver
      "{\"stations\":[{\"name\":\"a\"}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[0.1]},"
      "\"solver\":\"quantum\",\"max_population\":10}",
  };
  for (const char* line : bad) {
    EXPECT_THROW(service::parse_request(line), std::exception)
        << "line: " << line;
  }
}

TEST(RequestParsing, IdRecoveryFromBrokenRequests) {
  EXPECT_EQ(service::recover_request_id("{\"id\":41,\"cmd\":\"nope\"}")
                .as_number(),
            41.0);
  EXPECT_TRUE(service::recover_request_id("{\"id\":41").is_null());
  EXPECT_TRUE(service::recover_request_id("{}").is_null());
}

// --- multiclass request lines ----------------------------------------------

TEST(RequestParsing, HostileClassesInputsThrow) {
  // Valid JSON, invalid class mixes: every one must be rejected at parse
  // time, before a solver or the cache sees it.
  const char* bad[] = {
      // classes next to single-class demands
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"demands\":{\"type\":\"constant\",\"values\":[0.1,0.2]},"
      "\"classes\":[{\"name\":\"a\",\"population\":5,"
      "\"demands\":[0.1,0.2]}]}",
      // classes next to max_population
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"max_population\":10,"
      "\"classes\":[{\"name\":\"a\",\"population\":5,"
      "\"demands\":[0.1,0.2]}]}",
      // single-class solver kind with a class mix
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"solver\":\"mvasd\","
      "\"classes\":[{\"name\":\"a\",\"population\":5,"
      "\"demands\":[0.1,0.2]}]}",
      // empty mix
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[]}",
      // missing class name
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"population\":5,\"demands\":[0.1,0.2]}]}",
      // empty class name
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"\",\"population\":5,"
      "\"demands\":[0.1,0.2]}]}",
      // missing population
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"a\",\"demands\":[0.1,0.2]}]}",
      // negative population
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"a\",\"population\":-3,"
      "\"demands\":[0.1,0.2]}]}",
      // absurd population
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"a\",\"population\":2000000,"
      "\"demands\":[0.1,0.2]}]}",
      // every class idle
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"a\",\"population\":0,"
      "\"demands\":[0.1,0.2]},{\"name\":\"b\",\"population\":0,"
      "\"demands\":[0.2,0.1]}]}",
      // demand vector narrower than the station list
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"a\",\"population\":5,"
      "\"demands\":[0.1]}]}",
      // negative demand in the vector shorthand
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"a\",\"population\":5,"
      "\"demands\":[-0.1,0.2]}]}",
      // spline demand object with one row for two stations
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"solver\":\"exact-multiclass\","
      "\"classes\":[{\"name\":\"a\",\"population\":5,"
      "\"demands\":{\"type\":\"spline\",\"axis\":\"concurrency\","
      "\"x\":[1,10],\"y\":[[0.1,0.1]]}}]}",
  };
  for (const char* line : bad) {
    EXPECT_THROW(service::parse_request(line), std::exception)
        << "line: " << line;
  }
}

TEST(RequestParsing, DuplicateClassNamesAreRejectedAtSolveTime) {
  // Structurally the line is fine, so parsing succeeds; the solver's mix
  // validation rejects it with the stable error prefix.
  const auto parsed = service::parse_request(
      "{\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"a\",\"population\":5,"
      "\"demands\":[0.1,0.2]},{\"name\":\"a\",\"population\":3,"
      "\"demands\":[0.2,0.1]}]}");
  service::Engine engine;
  try {
    (void)engine.evaluate(parsed.spec);
    FAIL() << "expected mtperf::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind(Error::prefix(), 0), 0u) << what;
    EXPECT_NE(what.find("duplicate customer class name"), std::string::npos)
        << what;
  }
}

TEST(RequestParsing, ZeroPopulationClassAmongNonZeroIsServed) {
  const auto parsed = service::parse_request(
      "{\"id\":3,\"stations\":[{\"name\":\"cpu\"},{\"name\":\"disk\"}],"
      "\"classes\":[{\"name\":\"idle\",\"population\":0,"
      "\"demands\":[0.1,0.2]},{\"name\":\"busy\",\"population\":10,"
      "\"think\":1.0,\"demands\":[0.02,0.01]}]}");
  service::Engine engine;
  const auto evaluation = engine.evaluate(parsed.spec);
  std::string out;
  service::append_evaluation(out, evaluation, parsed.series, parsed.id);
  const Json response = Json::parse(out);
  const Json& classes = response.at("classes");
  EXPECT_EQ(classes.at("idle").at("population").as_number(), 0.0);
  EXPECT_EQ(classes.at("idle").at("throughput").as_number(), 0.0);
  EXPECT_GT(classes.at("busy").at("throughput").as_number(), 0.0);
}

TEST(ServePipeline, MomServesMixesBeyondTheExactGuard) {
  // 3 classes x 700 customers over one queueing and one delay station:
  // the exact recursion's state space (701^3 vectors x 2 stations) trips
  // its 2^28 guard, while MoM's moment space is a few million doubles.
  const std::string mix_body =
      "\"stations\":[{\"name\":\"cpu\"},{\"name\":\"net\","
      "\"kind\":\"delay\"}],"
      "\"classes\":["
      "{\"name\":\"browse\",\"population\":700,\"think\":1.0,"
      "\"demands\":[0.004,0.020]},"
      "{\"name\":\"search\",\"population\":700,\"think\":1.0,"
      "\"demands\":[0.006,0.015]},"
      "{\"name\":\"buy\",\"population\":700,\"think\":1.0,"
      "\"demands\":[0.002,0.030]}]}";
  service::Engine engine;

  const auto exact = service::parse_request(
      "{\"solver\":\"exact-multiclass\"," + mix_body);
  EXPECT_THROW((void)engine.evaluate(exact.spec), Error);

  // "solver" omitted: multiclass requests default to mom-multiclass.
  const auto parsed = service::parse_request("{\"id\":9," + mix_body);
  const auto evaluation = engine.evaluate(parsed.spec);
  std::string out;
  service::append_evaluation(out, evaluation, parsed.series, parsed.id);
  const Json response = Json::parse(out);
  EXPECT_EQ(response.at("id").as_number(), 9.0);
  EXPECT_GT(response.at("throughput").as_number(), 0.0);
  const Json& classes = response.at("classes");
  double total = 0.0;
  for (const char* name : {"browse", "search", "buy"}) {
    const Json& jc = classes.at(name);
    EXPECT_EQ(jc.at("population").as_number(), 700.0);
    EXPECT_GT(jc.at("throughput").as_number(), 0.0);
    EXPECT_GT(jc.at("response_time").as_number(), 0.0);
    total += jc.at("throughput").as_number();
  }
  EXPECT_NEAR(total, response.at("throughput").as_number(),
              1e-9 * std::max(1.0, total));
}

TEST(ServePipeline, WorkmodelClassMixEndToEnd) {
  // One compiled service graph, two traffic classes: the demand_scale=2
  // class exercises the same mesh with doubled demands, so it must see a
  // strictly larger response time.
  const auto parsed = service::parse_request(
      "{\"cmd\":\"workmodel\",\"entry\":\"web\",\"think\":1.0,"
      "\"services\":{\"web\":{\"demand\":0.005,"
      "\"calls\":[{\"to\":\"db\"}]},\"db\":{\"demand\":0.012}},"
      "\"classes\":[{\"name\":\"light\",\"population\":40},"
      "{\"name\":\"heavy\",\"population\":40,\"demand_scale\":2.0}]}");
  service::Engine engine;
  const auto evaluation = engine.evaluate(parsed.spec);
  std::string out;
  service::append_evaluation(out, evaluation, parsed.series, parsed.id);
  const Json response = Json::parse(out);
  const Json& classes = response.at("classes");
  const double light_r = classes.at("light").at("response_time").as_number();
  const double heavy_r = classes.at("heavy").at("response_time").as_number();
  EXPECT_GT(light_r, 0.0);
  EXPECT_GT(heavy_r, light_r);
}

TEST(Json, DumpToMatchesDump) {
  const Json parsed = Json::parse(
      "{\"a\":[1,2.5,-3e-2],\"b\":{\"c\":\"x\\ny\",\"d\":null},"
      "\"e\":true,\"f\":false}");
  std::string appended = "prefix:";
  parsed.dump_to(appended);
  EXPECT_EQ(appended, "prefix:" + parsed.dump());
}

// --- single-flight dedup ---------------------------------------------------

TEST(SingleFlight, ConcurrentIdenticalMissesCollapse) {
  service::Engine engine;
  // One expensive spec (deep population) requested by many threads at
  // once: the leader solves, everyone else must be served from the same
  // in-flight solve (coalesced) or from the cache right after it lands.
  const core::ScenarioSpec spec = make_spec(1.0, 20000, 64);
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<service::Evaluation> evaluations(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      evaluations[t] = engine.evaluate(spec);
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();

  const auto metrics = engine.metrics();
  // The collapse is what matters: 8 identical requests, at most 2 solver
  // runs even under adversarial scheduling (leader + one straggler that
  // started before the leader registered).
  EXPECT_LE(metrics.misses, 2u);
  EXPECT_EQ(metrics.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(metrics.hits + metrics.misses,
            static_cast<std::uint64_t>(kThreads));
  // Every thread got the same (shared) result, bit-identical.
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(evaluations[t].result, nullptr);
    EXPECT_EQ(evaluations[t].result->throughput,
              evaluations[0].result->throughput);
  }
}

TEST(SingleFlight, ConcurrentBatchesDoNotDeadlock) {
  // Two threads evaluate overlapping batches (shared fingerprints) at
  // the same time; publish-own-before-await-foreign plus caller
  // participation in parallel_for must keep this deadlock-free even on a
  // single-thread pool.
  service::EngineOptions options;
  options.threads = 1;
  service::Engine engine(options);
  std::vector<core::ScenarioSpec> batch_a, batch_b;
  for (int i = 0; i < 12; ++i) {
    batch_a.push_back(make_spec(1.0 + 0.01 * i, 400));
    batch_b.push_back(make_spec(1.0 + 0.01 * (i + 6), 400));  // overlap 6..11
  }
  std::vector<service::Evaluation> out_a, out_b;
  std::thread ta([&] { out_a = engine.evaluate_batch(batch_a); });
  std::thread tb([&] { out_b = engine.evaluate_batch(batch_b); });
  ta.join();
  tb.join();
  ASSERT_EQ(out_a.size(), batch_a.size());
  ASSERT_EQ(out_b.size(), batch_b.size());
  for (int i = 0; i < 6; ++i) {
    // The overlapping specs must agree bit-for-bit across the two batches.
    EXPECT_EQ(out_a[6 + i].result->throughput, out_b[i].result->throughput);
  }
}

// --- batched vs scalar parity ----------------------------------------------

TEST(BatchParity, BatchedServingPathIsBitIdenticalToScalar) {
  service::Engine engine;
  std::vector<core::ScenarioSpec> specs;
  // Mixed corpus: one structure family at several demand variants and
  // ragged populations (exercises lane retirement), plus a structurally
  // different spec that lands in its own group.
  for (int i = 0; i < 21; ++i) {
    specs.push_back(make_spec(1.0 + 0.02 * i, 300 + 40 * (i % 5)));
  }
  specs.push_back(make_spec(1.0, 200, 16));
  const auto batched = engine.evaluate_batch(specs);
  ASSERT_EQ(batched.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const core::MvaResult direct =
        core::solve(specs[i].network, &specs[i].demands, specs[i].options);
    ASSERT_EQ(batched[i].result->levels(), direct.levels());
    // Tolerance zero: the serving path must be the solver, exactly.
    EXPECT_EQ(batched[i].result->throughput, direct.throughput) << i;
    EXPECT_EQ(batched[i].result->response_time, direct.response_time) << i;
  }
  const auto metrics = engine.metrics();
  EXPECT_GT(metrics.batch_blocks, 0u);
  EXPECT_EQ(metrics.batch_lanes, 22u);
}

// --- socket server end to end ----------------------------------------------

/// Send `lines` to a connected socket and read until `expected` responses
/// arrive; returns them keyed by "id".  Responses without an id (errors
/// for unparseable lines) get unique descending sentinel keys so each one
/// still counts toward `expected`.
std::map<std::uint64_t, Json> exchange(Socket& sock,
                                       const std::vector<std::string>& lines,
                                       std::size_t expected) {
  for (const auto& line : lines) {
    EXPECT_TRUE(sock.send_all(line));
  }
  std::map<std::uint64_t, Json> responses;
  std::uint64_t sentinel = static_cast<std::uint64_t>(-1);
  LineReader reader(sock);
  std::string line;
  while (responses.size() < expected && reader.next_line(line)) {
    Json response = Json::parse(line);
    const std::uint64_t id =
        response.contains("id")
            ? static_cast<std::uint64_t>(response.at("id").as_number())
            : sentinel--;
    responses.emplace(id, std::move(response));
  }
  return responses;
}

TEST(SocketServer, ServesParityErrorsAndMetrics) {
  service::ServerOptions options;
  options.port = 0;
  options.max_batch = 8;
  options.batch_deadline = std::chrono::microseconds(500);
  service::Server server(options);
  server.start();

  Socket sock = connect_tcp(server.port());
  ASSERT_TRUE(sock.valid());
  std::vector<std::string> lines;
  constexpr std::size_t kScenarios = 10;
  for (std::uint64_t i = 0; i < kScenarios; ++i) {
    lines.push_back(spec_request(i, 1.0 + 0.05 * static_cast<double>(i), 250));
  }
  lines.push_back("{\"id\":97,\"cmd\":\"bogus\"}\n");
  lines.push_back("{\"id\":98,\"cmd\":\"metrics\"}\n");
  const auto responses = exchange(sock, lines, kScenarios + 2);
  ASSERT_EQ(responses.size(), kScenarios + 2);

  // Every scenario response matches a direct solve bit-for-bit (doubles
  // round-trip through the wire via shortest-round-trip formatting).
  for (std::uint64_t i = 0; i < kScenarios; ++i) {
    const auto it = responses.find(i);
    ASSERT_NE(it, responses.end()) << "missing id " << i;
    const core::ScenarioSpec spec =
        make_spec(1.0 + 0.05 * static_cast<double>(i), 250);
    const core::MvaResult direct =
        core::solve(spec.network, &spec.demands, spec.options);
    EXPECT_EQ(it->second.at("throughput").as_number(),
              direct.throughput.back());
    EXPECT_EQ(it->second.at("response_time").as_number(),
              direct.response_time.back());
  }
  // The unknown command came back as an error with its id echoed.
  ASSERT_TRUE(responses.count(97));
  EXPECT_TRUE(responses.at(97).contains("error"));
  // The metrics line reports both engine and transport counters.
  ASSERT_TRUE(responses.count(98));
  const Json& metrics = responses.at(98);
  EXPECT_TRUE(metrics.contains("metrics"));
  EXPECT_TRUE(metrics.contains("server"));
  EXPECT_GE(metrics.at("server").at("accepted").as_number(), 1.0);

  server.stop();
}

TEST(SocketServer, HostileLinesGetErrorsAndServingContinues) {
  service::ServerOptions options;
  options.port = 0;
  options.max_batch = 4;
  options.batch_deadline = std::chrono::microseconds(500);
  service::Server server(options);
  server.start();

  Socket sock = connect_tcp(server.port());
  std::string bomb = "{\"id\":1,\"x\":";
  for (int i = 0; i < 200; ++i) bomb += "[";
  std::vector<std::string> lines = {
      "{\"id\":1\n",                 // truncated
      bomb + "\n",                   // nesting bomb
      "{\"id\":3,\"x\":1e999999}\n", // overflow number
      "{\"id\":4,\"x\":NaN}\n",      // invalid literal
      std::string("{\"id\":5,\"label\":\"\xff\x80\"}\n"),  // invalid UTF-8
  };
  const auto errors = exchange(sock, lines, lines.size());
  ASSERT_EQ(errors.size(), lines.size());
  for (const auto& [id, response] : errors) {
    EXPECT_TRUE(response.contains("error"));
  }
  // The server is still healthy: a good request round-trips.
  const auto good = exchange(sock, {spec_request(42, 1.0, 100)}, 1);
  ASSERT_TRUE(good.count(42));
  EXPECT_TRUE(good.at(42).contains("throughput"));
  server.stop();
}

TEST(SocketServer, OverloadShedsFastAndKeepsServing) {
  service::ServerOptions options;
  options.port = 0;
  options.max_batch = 1;   // solve one at a time...
  options.batch_deadline = std::chrono::microseconds(100);
  options.queue_capacity = 1;  // ...with room for exactly one waiter
  options.engine.threads = 1;
  service::Server server(options);
  server.start();

  Socket sock = connect_tcp(server.port());
  // Pipeline a burst of slow, distinct solves without reading: with a
  // queue of one, most of the burst must be shed as "overloaded".
  constexpr std::uint64_t kBurst = 24;
  std::vector<std::string> lines;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    lines.push_back(
        spec_request(i, 1.0 + 0.01 * static_cast<double>(i), 12000));
  }
  const auto responses = exchange(sock, lines, kBurst);
  ASSERT_EQ(responses.size(), kBurst);
  std::size_t served = 0, shed = 0;
  for (const auto& [id, response] : responses) {
    if (response.contains("error")) {
      EXPECT_EQ(response.at("error").as_string(), "overloaded");
      ++shed;
    } else {
      ++served;
    }
  }
  EXPECT_GE(shed, 1u) << "2x-capacity burst must shed";
  EXPECT_GE(served, 1u);
  EXPECT_EQ(server.metrics().rejected_overloaded, shed);

  // Shedding is not a failure mode: the connection still serves.
  const auto after = exchange(sock, {spec_request(99, 5.0, 50)}, 1);
  ASSERT_TRUE(after.count(99));
  EXPECT_TRUE(after.at(99).contains("throughput"));
  server.stop();
}

TEST(SocketServer, PerConnectionInflightCapIsEnforced) {
  service::ServerOptions options;
  options.port = 0;
  options.max_batch = 1;
  options.batch_deadline = std::chrono::microseconds(100);
  options.queue_capacity = 64;       // queue has room...
  options.max_inflight_per_conn = 2; // ...but each connection does not
  options.engine.threads = 1;
  service::Server server(options);
  server.start();

  Socket sock = connect_tcp(server.port());
  constexpr std::uint64_t kBurst = 12;
  std::vector<std::string> lines;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    lines.push_back(
        spec_request(i, 2.0 + 0.01 * static_cast<double>(i), 12000));
  }
  const auto responses = exchange(sock, lines, kBurst);
  ASSERT_EQ(responses.size(), kBurst);
  std::size_t shed = 0;
  for (const auto& [id, response] : responses) {
    if (response.contains("error")) ++shed;
  }
  EXPECT_GE(shed, 1u);
  EXPECT_GE(server.metrics().rejected_inflight, 1u);
  server.stop();
}

TEST(SocketServer, ClientDisconnectMidResponseDropsConnectionNotServer) {
  service::ServerOptions options;
  options.port = 0;
  options.max_batch = 8;
  options.batch_deadline = std::chrono::microseconds(500);
  service::Server server(options);
  server.start();

  // A rude client floods series requests (responses of tens of kilobytes,
  // far past the socket buffer) and vanishes without reading a byte, so
  // batcher threads hit the dead socket mid-flush.  The failure must cost
  // that one connection — never a SIGPIPE to the process — and responses
  // for live connections in the same batches must keep flowing.
  {
    Socket rude = connect_tcp(server.port());
    ASSERT_TRUE(rude.valid());
    for (std::uint64_t i = 0; i < 48; ++i) {
      std::string line =
          spec_request(i, 1.0 + 0.01 * static_cast<double>(i), 2000);
      line.insert(line.size() - 2, ",\"series\":true");
      ASSERT_TRUE(rude.send_all(line));
    }
    rude.close();  // gone before the first response can flush
  }

  // A polite client connected the whole time is served normally.
  Socket sock = connect_tcp(server.port());
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t id = 100 + static_cast<std::uint64_t>(round);
    const auto good = exchange(
        sock, {spec_request(id, 5.0 + 0.1 * round, 200)}, 1);
    ASSERT_TRUE(good.count(id)) << round;
    EXPECT_TRUE(good.at(id).contains("throughput")) << round;
  }
  server.stop();
}

TEST(SocketServer, StopAnswersAllAdmittedWork) {
  service::ServerOptions options;
  options.port = 0;
  options.max_batch = 4;
  options.batch_deadline = std::chrono::microseconds(200);
  service::Server server(options);
  server.start();
  Socket sock = connect_tcp(server.port());
  std::vector<std::string> lines;
  for (std::uint64_t i = 0; i < 6; ++i) {
    lines.push_back(spec_request(i, 3.0 + 0.01 * static_cast<double>(i), 800));
  }
  for (const auto& line : lines) ASSERT_TRUE(sock.send_all(line));
  // Stop with requests still in the pipeline: every admitted request
  // must still be answered before the connection closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread stopper([&server] { server.stop(); });
  LineReader reader(sock);
  std::string line;
  std::size_t answered = 0;
  while (reader.next_line(line)) {
    if (line.find("\"throughput\"") != std::string::npos ||
        line.find("\"error\"") != std::string::npos) {
      ++answered;
    }
  }
  stopper.join();
  EXPECT_GE(answered, 1u);
}

}  // namespace
