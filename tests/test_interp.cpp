// Unit and property tests for mtperf::interp — splines, polynomial
// interpolation, Chebyshev nodes, and the solvers beneath them.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "interp/chebyshev.hpp"
#include "interp/cubic_spline.hpp"
#include "interp/linear.hpp"
#include "interp/pchip.hpp"
#include "interp/polynomial.hpp"
#include "interp/smoothing_spline.hpp"
#include "interp/tridiagonal.hpp"

namespace mtperf::interp {
namespace {

// ------------------------------------------------------------- tridiagonal

TEST(Tridiagonal, SolvesIdentity) {
  const std::vector<double> one{1, 1, 1};
  const std::vector<double> zero{0, 0, 0};
  const std::vector<double> rhs{3, -1, 7};
  const auto u = solve_tridiagonal(zero, one, zero, rhs);
  EXPECT_EQ(u, rhs);
}

TEST(Tridiagonal, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] u = [4; 8; 8] -> u = [1; 2; 3]
  const std::vector<double> sub{0, 1, 1};
  const std::vector<double> diag{2, 2, 2};
  const std::vector<double> super{1, 1, 0};
  const std::vector<double> rhs{4, 8, 8};
  const auto u = solve_tridiagonal(sub, diag, super, rhs);
  EXPECT_NEAR(u[0], 1.0, 1e-12);
  EXPECT_NEAR(u[1], 2.0, 1e-12);
  EXPECT_NEAR(u[2], 3.0, 1e-12);
}

TEST(Tridiagonal, RandomizedResidualProperty) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 20));
    std::vector<double> sub(n), diag(n), super(n), rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      sub[i] = rng.uniform(-1.0, 1.0);
      super[i] = rng.uniform(-1.0, 1.0);
      diag[i] = 3.0 + rng.uniform(0.0, 1.0);  // diagonally dominant
      rhs[i] = rng.uniform(-5.0, 5.0);
    }
    const auto u = solve_tridiagonal(sub, diag, super, rhs);
    for (std::size_t i = 0; i < n; ++i) {
      double lhs = diag[i] * u[i];
      if (i > 0) lhs += sub[i] * u[i - 1];
      if (i + 1 < n) lhs += super[i] * u[i + 1];
      EXPECT_NEAR(lhs, rhs[i], 1e-9);
    }
  }
}

TEST(Tridiagonal, ThrowsOnZeroPivot) {
  EXPECT_THROW(solve_tridiagonal(std::vector<double>{0.0},
                                 std::vector<double>{0.0},
                                 std::vector<double>{0.0},
                                 std::vector<double>{1.0}),
               numeric_error);
}

TEST(Tridiagonal, RejectsBandMismatch) {
  EXPECT_THROW(solve_tridiagonal(std::vector<double>{0.0},
                                 std::vector<double>{1.0, 1.0},
                                 std::vector<double>{0.0, 0.0},
                                 std::vector<double>{1.0, 1.0}),
               invalid_argument_error);
}

TEST(TridiagonalCorners, ReducesToPlainWhenCornersZero) {
  const std::vector<double> sub{0, 1, 1, 1};
  const std::vector<double> diag{4, 4, 4, 4};
  const std::vector<double> super{1, 1, 1, 0};
  const std::vector<double> rhs{5, 6, 6, 5};
  const auto a = solve_tridiagonal(sub, diag, super, rhs);
  const auto b = solve_tridiagonal_with_corners(sub, diag, super, rhs, 0, 0);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(TridiagonalCorners, SolvesSystemWithCorners) {
  // Verify residual of the full (corner-augmented) system.
  const std::vector<double> sub{0, 1, 2, 1};
  const std::vector<double> diag{5, 6, 6, 5};
  const std::vector<double> super{1, 2, 1, 0};
  const std::vector<double> rhs{1, 2, 3, 4};
  const double c_first = 0.5, c_last = -0.5;
  const auto u = solve_tridiagonal_with_corners(sub, diag, super, rhs, c_first,
                                                c_last);
  EXPECT_NEAR(diag[0] * u[0] + super[0] * u[1] + c_first * u[2], rhs[0], 1e-9);
  EXPECT_NEAR(sub[1] * u[0] + diag[1] * u[1] + super[1] * u[2], rhs[1], 1e-9);
  EXPECT_NEAR(sub[2] * u[1] + diag[2] * u[2] + super[2] * u[3], rhs[2], 1e-9);
  EXPECT_NEAR(c_last * u[1] + sub[3] * u[2] + diag[3] * u[3], rhs[3], 1e-9);
}

// ---------------------------------------------------------------- SampleSet

TEST(SampleSet, RejectsNonIncreasingX) {
  EXPECT_THROW(SampleSet({1.0, 1.0}, {0.0, 1.0}), invalid_argument_error);
  EXPECT_THROW(SampleSet({2.0, 1.0}, {0.0, 1.0}), invalid_argument_error);
}

TEST(SampleSet, RejectsLengthMismatchAndEmpty) {
  EXPECT_THROW(SampleSet({1.0}, {}), invalid_argument_error);
  EXPECT_THROW(SampleSet({}, {}), invalid_argument_error);
}

TEST(SampleSet, SubsetSelectsPoints) {
  SampleSet s({1, 2, 3, 4}, {10, 20, 30, 40});
  const std::vector<std::size_t> idx{0, 2};
  const SampleSet sub = s.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.x[1], 3.0);
  EXPECT_DOUBLE_EQ(sub.y[1], 30.0);
}

TEST(SampleSet, TabulateAppliesFunction) {
  const auto s = SampleSet::tabulate({0.0, 1.0, 2.0},
                                     [](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(s.y[2], 4.0);
}

TEST(FindInterval, LocatesAndClamps) {
  const std::vector<double> knots{0.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(find_interval(knots, -5.0), 0u);
  EXPECT_EQ(find_interval(knots, 0.5), 0u);
  EXPECT_EQ(find_interval(knots, 1.0), 1u);
  EXPECT_EQ(find_interval(knots, 2.5), 2u);
  EXPECT_EQ(find_interval(knots, 99.0), 2u);
}

TEST(ValueWithCursor, BitIdenticalToValueOnMonotoneSweep) {
  const auto f = build_cubic_spline(
      SampleSet({0.0, 1.0, 2.5, 4.0, 7.0}, {1.0, 0.5, 2.0, -1.0, 3.0}));
  std::size_t cursor = 0;
  for (double x = -1.0; x <= 8.0; x += 0.01) {  // includes both extrap sides
    EXPECT_EQ(f.value_with_cursor(x, cursor), f.value(x)) << "x=" << x;
  }
}

TEST(ValueWithCursor, HandlesNonMonotoneQueries) {
  const auto f = build_cubic_spline(
      SampleSet({0.0, 1.0, 2.5, 4.0, 7.0}, {1.0, 0.5, 2.0, -1.0, 3.0}));
  std::size_t cursor = 0;
  // Jump forward, backward, out of range, back in: the cursor must recover.
  for (double x : {6.5, 0.5, 3.0, -2.0, 5.0, 9.0, 1.5}) {
    EXPECT_EQ(f.value_with_cursor(x, cursor), f.value(x)) << "x=" << x;
  }
  // A stale out-of-range cursor value must not fault or mislead.
  cursor = 1000;
  EXPECT_EQ(f.value_with_cursor(2.0, cursor), f.value(2.0));
}

// ------------------------------------------------------------------ linear

TEST(Linear, InterpolatesExactlyAtAndBetweenKnots) {
  const auto f = build_linear(SampleSet({0, 2, 4}, {0, 4, 0}));
  EXPECT_DOUBLE_EQ(f.value(0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1), 2.0);
  EXPECT_DOUBLE_EQ(f.value(2), 4.0);
  EXPECT_DOUBLE_EQ(f.value(3), 2.0);
}

TEST(Linear, PeggedExtrapolation) {
  const auto f = build_linear(SampleSet({1, 2}, {5, 9}));
  EXPECT_DOUBLE_EQ(f.value(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(10.0), 9.0);
  EXPECT_DOUBLE_EQ(f.derivative(10.0, 1), 0.0);
}

TEST(Linear, SinglePointIsConstant) {
  const auto f = build_linear(SampleSet({3.0}, {7.0}));
  EXPECT_DOUBLE_EQ(f.value(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(f.value(100.0), 7.0);
}

// ------------------------------------------------------------ cubic spline

class SplineBoundaryTest
    : public ::testing::TestWithParam<SplineBoundary> {};

TEST_P(SplineBoundaryTest, InterpolatesAtKnots) {
  SampleSet s({0, 1, 2.5, 4, 5.5, 7}, {1.0, 3.0, -2.0, 0.5, 4.0, 4.5});
  CubicSplineOptions opt;
  opt.boundary = GetParam();
  if (opt.boundary == SplineBoundary::kClamped) {
    opt.start_slope = 1.0;
    opt.end_slope = -1.0;
  }
  const auto f = build_cubic_spline(s, opt);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(f.value(s.x[i]), s.y[i], 1e-10) << "knot " << i;
  }
}

TEST_P(SplineBoundaryTest, IsC2Continuous) {
  SampleSet s({0, 1, 2, 3.5, 5, 6}, {0.0, 2.0, 1.0, -1.0, 0.5, 2.0});
  CubicSplineOptions opt;
  opt.boundary = GetParam();
  if (opt.boundary == SplineBoundary::kClamped) {
    opt.start_slope = 0.0;
    opt.end_slope = 0.0;
  }
  const auto f = build_cubic_spline(s, opt);
  const double eps = 1e-7;
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    for (int d = 0; d <= 2; ++d) {
      const double left = f.derivative(s.x[i] - eps, d);
      const double right = f.derivative(s.x[i] + eps, d);
      EXPECT_NEAR(left, right, 1e-4) << "knot " << i << " derivative " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBoundaries, SplineBoundaryTest,
                         ::testing::Values(SplineBoundary::kNatural,
                                           SplineBoundary::kClamped,
                                           SplineBoundary::kNotAKnot));

TEST(CubicSpline, NaturalBoundarySecondDerivativesVanish) {
  SampleSet s({0, 1, 2, 3, 4}, {0, 1, 0, 1, 0});
  CubicSplineOptions opt;
  opt.boundary = SplineBoundary::kNatural;
  const auto f = build_cubic_spline(s, opt);
  EXPECT_NEAR(f.second_derivative_at_knot(0), 0.0, 1e-10);
  EXPECT_NEAR(f.second_derivative_at_knot(4), 0.0, 1e-10);
}

TEST(CubicSpline, ClampedBoundaryHonoursSlopes) {
  SampleSet s({0, 1, 2, 3}, {0, 1, 4, 9});
  CubicSplineOptions opt;
  opt.boundary = SplineBoundary::kClamped;
  opt.start_slope = 0.0;
  opt.end_slope = 6.0;
  const auto f = build_cubic_spline(s, opt);
  EXPECT_NEAR(f.derivative(0.0, 1), 0.0, 1e-10);
  EXPECT_NEAR(f.derivative(3.0, 1), 6.0, 1e-10);
}

TEST(CubicSpline, ClampedRequiresSlopes) {
  SampleSet s({0, 1, 2, 3}, {0, 1, 4, 9});
  CubicSplineOptions opt;
  opt.boundary = SplineBoundary::kClamped;
  EXPECT_THROW(build_cubic_spline(s, opt), invalid_argument_error);
}

TEST(CubicSpline, NotAKnotReproducesCubicExactly) {
  // A single cubic sampled at >= 4 points must be reproduced exactly by the
  // not-a-knot spline (both end conditions are consistent with one cubic).
  auto cubic = [](double x) { return 2.0 + x - 0.5 * x * x + 0.25 * x * x * x; };
  const auto s = SampleSet::tabulate({0, 1, 2, 3, 4, 5}, cubic);
  CubicSplineOptions opt;
  opt.boundary = SplineBoundary::kNotAKnot;
  opt.extrapolation = Extrapolation::kNatural;
  const auto f = build_cubic_spline(s, opt);
  for (double x = -1.0; x <= 6.0; x += 0.17) {
    EXPECT_NEAR(f.value(x), cubic(x), 1e-9) << "x=" << x;
  }
  // ... including derivatives.
  for (double x : {0.3, 2.7, 4.9}) {
    EXPECT_NEAR(f.derivative(x, 1), 1.0 - x + 0.75 * x * x, 1e-9);
    EXPECT_NEAR(f.derivative(x, 2), -1.0 + 1.5 * x, 1e-8);
    EXPECT_NEAR(f.derivative(x, 3), 1.5, 1e-8);
  }
}

TEST(CubicSpline, ClampedReproducesQuadratic) {
  auto quad = [](double x) { return 1.0 + 2.0 * x + 3.0 * x * x; };
  const auto s = SampleSet::tabulate({0, 1, 2, 3}, quad);
  CubicSplineOptions opt;
  opt.boundary = SplineBoundary::kClamped;
  opt.start_slope = 2.0;          // f'(0)
  opt.end_slope = 2.0 + 6.0 * 3;  // f'(3)
  const auto f = build_cubic_spline(s, opt);
  for (double x = 0.0; x <= 3.0; x += 0.1) {
    EXPECT_NEAR(f.value(x), quad(x), 1e-9);
  }
}

TEST(CubicSpline, PeggedExtrapolationMatchesPaperEq14) {
  SampleSet s({1, 100, 200}, {0.010, 0.008, 0.007});
  const auto f = build_cubic_spline(s);  // default: pegged
  EXPECT_DOUBLE_EQ(f.value(0.5), 0.010);   // below x_1 -> y_1
  EXPECT_DOUBLE_EQ(f.value(500.0), 0.007); // above x_n -> y_n
  EXPECT_DOUBLE_EQ(f.derivative(0.5, 1), 0.0);
  EXPECT_DOUBLE_EQ(f.derivative(500.0, 2), 0.0);
}

TEST(CubicSpline, ThrowExtrapolationPolicy) {
  SampleSet s({0, 1, 2, 3}, {0, 1, 0, 1});
  CubicSplineOptions opt;
  opt.extrapolation = Extrapolation::kThrow;
  const auto f = build_cubic_spline(s, opt);
  EXPECT_NO_THROW(f.value(1.5));
  EXPECT_THROW(f.value(-0.1), invalid_argument_error);
  EXPECT_THROW(f.value(3.1), invalid_argument_error);
}

TEST(CubicSpline, LinearExtrapolationContinuesSlope) {
  const auto s = SampleSet::tabulate({0, 1, 2, 3}, [](double x) { return 2 * x; });
  CubicSplineOptions opt;
  opt.extrapolation = Extrapolation::kLinear;
  const auto f = build_cubic_spline(s, opt);
  EXPECT_NEAR(f.value(5.0), 10.0, 1e-9);
  EXPECT_NEAR(f.value(-2.0), -4.0, 1e-9);
  EXPECT_NEAR(f.derivative(5.0, 1), 2.0, 1e-9);
}

TEST(CubicSpline, TwoPointsDegradeToLine) {
  const auto f = build_cubic_spline(SampleSet({0, 10}, {0, 5}));
  EXPECT_DOUBLE_EQ(f.value(4.0), 2.0);
}

TEST(CubicSpline, OnePointIsConstant) {
  const auto f = build_cubic_spline(SampleSet({2.0}, {9.0}));
  EXPECT_DOUBLE_EQ(f.value(2.0), 9.0);
  EXPECT_DOUBLE_EQ(f.value(-3.0), 9.0);
}

TEST(CubicSpline, ThreePointNotAKnotFallsBackToNatural) {
  SampleSet s({0, 1, 2}, {0, 1, 0});
  const auto naw = build_cubic_spline(s);  // not-a-knot requested
  CubicSplineOptions nat;
  nat.boundary = SplineBoundary::kNatural;
  const auto f_nat = build_cubic_spline(s, nat);
  for (double x = 0.0; x <= 2.0; x += 0.25) {
    EXPECT_DOUBLE_EQ(naw.value(x), f_nat.value(x));
  }
}

TEST(PiecewiseCubic, DerivativeOrderValidation) {
  const auto f = build_cubic_spline(SampleSet({0, 1, 2, 3}, {0, 1, 0, 1}));
  EXPECT_THROW(f.derivative(1.0, 4), invalid_argument_error);
  EXPECT_THROW(f.derivative(1.0, -1), invalid_argument_error);
}

// ------------------------------------------------------------------- PCHIP

TEST(Pchip, InterpolatesAtKnots) {
  SampleSet s({0, 1, 3, 4, 7}, {2.0, 0.5, 0.4, 0.39, 0.2});
  const auto f = build_pchip(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(f.value(s.x[i]), s.y[i], 1e-12);
  }
}

TEST(Pchip, PreservesMonotonicity) {
  // Strictly decreasing data: interpolant must never increase.
  SampleSet s({0, 1, 2, 3, 10}, {10.0, 4.0, 3.8, 1.0, 0.9});
  const auto f = build_pchip(s);
  double prev = f.value(0.0);
  for (double x = 0.01; x <= 10.0; x += 0.01) {
    const double y = f.value(x);
    EXPECT_LE(y, prev + 1e-12) << "x=" << x;
    prev = y;
  }
}

TEST(Pchip, NoOvershootBeyondDataRange) {
  SampleSet s({0, 1, 2, 3}, {0.0, 0.0, 1.0, 1.0});
  const auto f = build_pchip(s);
  for (double x = 0.0; x <= 3.0; x += 0.01) {
    EXPECT_GE(f.value(x), -1e-12);
    EXPECT_LE(f.value(x), 1.0 + 1e-12);
  }
}

TEST(Pchip, FlattensAtLocalExtrema) {
  SampleSet s({0, 1, 2}, {0.0, 1.0, 0.0});
  const auto f = build_pchip(s);
  EXPECT_NEAR(f.derivative(1.0, 1), 0.0, 1e-12);
}

TEST(Pchip, TwoPointsLinear) {
  const auto f = build_pchip(SampleSet({0, 2}, {0, 4}));
  EXPECT_DOUBLE_EQ(f.value(1.0), 2.0);
}

// -------------------------------------------------------- smoothing spline

TEST(SmoothingSpline, ZeroLambdaInterpolates) {
  SampleSet s({0, 1, 2, 3, 4}, {1.0, 3.0, 2.0, 5.0, 4.0});
  const auto f = build_smoothing_spline(s, 0.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(f.value(s.x[i]), s.y[i], 1e-9);
  }
}

TEST(SmoothingSpline, ZeroLambdaMatchesNaturalSpline) {
  SampleSet s({0, 1, 2.5, 4, 5}, {1.0, -1.0, 2.0, 0.0, 1.5});
  const auto smooth = build_smoothing_spline(s, 0.0);
  CubicSplineOptions opt;
  opt.boundary = SplineBoundary::kNatural;
  const auto nat = build_cubic_spline(s, opt);
  for (double x = 0.0; x <= 5.0; x += 0.13) {
    EXPECT_NEAR(smooth.value(x), nat.value(x), 1e-8) << "x=" << x;
  }
}

TEST(SmoothingSpline, LargeLambdaApproachesLeastSquaresLine) {
  // Noisy samples around y = 2x + 1.
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 1.0 + rng.normal(0.0, 0.05));
  }
  const auto f = build_smoothing_spline(SampleSet(xs, ys), 1e9);
  // A straight line has zero curvature everywhere.
  for (double x : {2.0, 10.0, 18.0}) {
    EXPECT_NEAR(f.derivative(x, 2), 0.0, 1e-6);
    EXPECT_NEAR(f.derivative(x, 1), 2.0, 0.05);
  }
}

TEST(SmoothingSpline, ResidualGrowsWithLambda) {
  Rng rng(8);
  std::vector<double> xs, ys;
  for (int i = 0; i <= 15; ++i) {
    xs.push_back(i);
    ys.push_back(std::sin(0.7 * i) + rng.normal(0.0, 0.1));
  }
  const SampleSet s(xs, ys);
  auto sum_sq_residual = [&](double lambda) {
    const auto f = build_smoothing_spline(s, lambda);
    double r = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const double e = f.value(s.x[i]) - s.y[i];
      r += e * e;
    }
    return r;
  };
  const double r0 = sum_sq_residual(0.0);
  const double r1 = sum_sq_residual(1.0);
  const double r2 = sum_sq_residual(100.0);
  EXPECT_LE(r0, r1 + 1e-12);
  EXPECT_LT(r1, r2);
}

TEST(SmoothingSpline, RejectsBadInputs) {
  SampleSet s({0, 1, 2}, {0, 1, 0});
  EXPECT_THROW(build_smoothing_spline(s, -1.0), invalid_argument_error);
  EXPECT_THROW(build_smoothing_spline(SampleSet({0, 1}, {0, 1}), 1.0),
               invalid_argument_error);
}

// -------------------------------------------------------------- polynomial

TEST(Polynomial, NewtonAndBarycentricAgree) {
  const auto s = SampleSet::tabulate({-2, -1, 0.5, 1, 3},
                                     [](double x) { return std::sin(x); });
  const NewtonPolynomial newton(s);
  const BarycentricPolynomial bary(s);
  for (double x = -2.0; x <= 3.0; x += 0.11) {
    EXPECT_NEAR(newton.value(x), bary.value(x), 1e-10) << "x=" << x;
  }
}

TEST(Polynomial, ReproducesPolynomialExactly) {
  auto poly = [](double x) { return 1 - 2 * x + 3 * x * x - x * x * x; };
  const auto s = SampleSet::tabulate({-1, 0, 1, 2, 4}, poly);
  const BarycentricPolynomial f(s);
  for (double x = -1.0; x <= 4.0; x += 0.2) {
    EXPECT_NEAR(f.value(x), poly(x), 1e-9);
  }
}

TEST(Polynomial, ValueAtNodeIsExact) {
  const SampleSet s({0, 1, 2}, {5.0, -3.0, 11.0});
  const BarycentricPolynomial f(s);
  EXPECT_DOUBLE_EQ(f.value(1.0), -3.0);
}

TEST(Polynomial, NewtonDerivativesMatchAnalytic) {
  auto poly = [](double x) { return x * x * x - 2 * x; };
  const auto s = SampleSet::tabulate({-2, -1, 0, 1, 2}, poly);
  const NewtonPolynomial f(s);
  for (double x : {-1.5, 0.3, 1.7}) {
    EXPECT_NEAR(f.derivative(x, 1), 3 * x * x - 2, 1e-9);
    EXPECT_NEAR(f.derivative(x, 2), 6 * x, 1e-8);
    EXPECT_NEAR(f.derivative(x, 3), 6.0, 1e-8);
  }
}

TEST(Polynomial, BarycentricDerivativeMatchesNewton) {
  const auto s = SampleSet::tabulate({0, 0.5, 1.2, 2, 3},
                                     [](double x) { return std::exp(x); });
  const NewtonPolynomial newton(s);
  const BarycentricPolynomial bary(s);
  for (double x : {0.25, 1.0, 2.5}) {
    for (int d = 1; d <= 3; ++d) {
      EXPECT_NEAR(newton.derivative(x, d), bary.derivative(x, d),
                  1e-6 * std::max(1.0, std::abs(newton.derivative(x, d))));
    }
  }
}

TEST(Polynomial, RungePhenomenonOnEquispacedNodes) {
  // f(x) = 1/(1+25x^2) on [-1,1]: equispaced interpolation error grows with
  // n while Chebyshev-node interpolation error shrinks — the Section 8
  // motivation.
  auto runge = [](double x) { return 1.0 / (1.0 + 25.0 * x * x); };
  auto error_with_nodes = [&](const std::vector<double>& nodes) {
    const auto s = SampleSet::tabulate(nodes, runge);
    const BarycentricPolynomial p(s);
    return max_abs_error(runge, [&](double x) { return p.value(x); }, -1, 1);
  };
  const double equi11 = error_with_nodes(equispaced_nodes(-1, 1, 11));
  const double equi21 = error_with_nodes(equispaced_nodes(-1, 1, 21));
  const double cheb11 = error_with_nodes(chebyshev_nodes(-1, 1, 11));
  const double cheb21 = error_with_nodes(chebyshev_nodes(-1, 1, 21));
  EXPECT_GT(equi21, equi11);          // diverges on equispaced nodes
  EXPECT_LT(cheb21, cheb11);          // converges on Chebyshev nodes
  EXPECT_LT(cheb11, equi11);
  EXPECT_GT(equi21, 1.0);             // the classic wild oscillation
  EXPECT_LT(cheb21, 0.1);
}

// --------------------------------------------------------------- chebyshev

TEST(Chebyshev, UnitNodesAreCosines) {
  const auto nodes = chebyshev_nodes_unit(4);
  ASSERT_EQ(nodes.size(), 4u);
  // Ascending; symmetric about 0.
  EXPECT_NEAR(nodes[0], -std::cos(M_PI / 8.0), 1e-12);
  EXPECT_NEAR(nodes[3], std::cos(M_PI / 8.0), 1e-12);
  EXPECT_NEAR(nodes[0] + nodes[3], 0.0, 1e-12);
  EXPECT_NEAR(nodes[1] + nodes[2], 0.0, 1e-12);
}

TEST(Chebyshev, NodesAreChebyshevPolynomialRoots) {
  for (std::size_t n : {3u, 5u, 8u}) {
    for (double x : chebyshev_nodes_unit(n)) {
      // T_n(x) = cos(n arccos x) must vanish at the nodes.
      EXPECT_NEAR(std::cos(static_cast<double>(n) * std::acos(x)), 0.0, 1e-10);
    }
  }
}

TEST(Chebyshev, AffineMapCoversInterval) {
  const auto nodes = chebyshev_nodes(10.0, 20.0, 7);
  for (double x : nodes) {
    EXPECT_GT(x, 10.0);
    EXPECT_LT(x, 20.0);
  }
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GT(nodes[i], nodes[i - 1]);
  }
}

TEST(Chebyshev, PaperConcurrencyLevels) {
  // The exact node sets the paper reports for [1, 300] (Section 8).
  EXPECT_EQ(chebyshev_concurrency_levels(1, 300, 3),
            (std::vector<unsigned>{22, 151, 280}));
  EXPECT_EQ(chebyshev_concurrency_levels(1, 300, 5),
            (std::vector<unsigned>{9, 63, 151, 239, 293}));
  EXPECT_EQ(chebyshev_concurrency_levels(1, 300, 7),
            (std::vector<unsigned>{5, 34, 86, 151, 216, 268, 297}));
}

TEST(Chebyshev, ErrorBoundMatchesFormula) {
  // n = 4: bound = M / (2^3 * 4!) = M / 192.
  EXPECT_NEAR(chebyshev_error_bound(4, 192.0), 1.0, 1e-12);
  // n = 1: bound = M / (2^0 * 1!) = M.
  EXPECT_NEAR(chebyshev_error_bound(1, 3.5), 3.5, 1e-12);
}

TEST(Chebyshev, ErrorBoundDecreasesWithNodes) {
  double prev = 1e300;
  for (std::size_t n = 1; n <= 10; ++n) {
    const double bound = chebyshev_error_bound_exponential(n, 1.0);
    EXPECT_LT(bound, prev);
    prev = bound;
  }
}

TEST(Chebyshev, PaperFig13DropsBelowPointTwoPercentAfterFiveNodes) {
  // "for greater than 5 nodes, the error rate drops to less than 0.2%".
  for (double mu : {1.0, 2.0, 4.0}) {
    EXPECT_LT(chebyshev_error_bound_exponential(6, mu), 0.002)
        << "mu=" << mu;
  }
}

TEST(Chebyshev, BoundDominatesEmpiricalError) {
  // The Eq. 19 bound must upper-bound the actual max interpolation error
  // for the exponential family on [-1, 1].
  for (double mu : {1.0, 2.0}) {
    for (std::size_t n : {3u, 5u, 7u}) {
      auto f = [mu](double x) { return std::exp(x / mu); };
      const auto s = SampleSet::tabulate(chebyshev_nodes(-1, 1, n), f);
      const BarycentricPolynomial p(s);
      const double measured =
          max_abs_error(f, [&](double x) { return p.value(x); }, -1, 1);
      EXPECT_LE(measured, chebyshev_error_bound_exponential(n, mu) + 1e-12)
          << "mu=" << mu << " n=" << n;
    }
  }
}

TEST(Chebyshev, RandomNodesSortedWithSeparation) {
  Rng rng(21);
  const auto nodes = random_nodes(0.0, 100.0, 5, rng);
  ASSERT_EQ(nodes.size(), 5u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GE(nodes[i] - nodes[i - 1], 100.0 / 20.0);
  }
}

TEST(Chebyshev, EquispacedEndpointsIncluded) {
  const auto nodes = equispaced_nodes(2.0, 6.0, 5);
  EXPECT_DOUBLE_EQ(nodes.front(), 2.0);
  EXPECT_DOUBLE_EQ(nodes.back(), 6.0);
  EXPECT_DOUBLE_EQ(nodes[2], 4.0);
}

TEST(Chebyshev, InputValidation) {
  EXPECT_THROW(chebyshev_nodes(5.0, 5.0, 3), invalid_argument_error);
  EXPECT_THROW(chebyshev_nodes_unit(0), invalid_argument_error);
  EXPECT_THROW(chebyshev_error_bound_exponential(3, 0.0),
               invalid_argument_error);
}

// Property sweep: every interpolating family reproduces its samples at the
// knots; run over several sample-set shapes.
class FamiliesAtKnots : public ::testing::TestWithParam<int> {};

TEST_P(FamiliesAtKnots, AllFamiliesInterpolate) {
  Rng rng(100 + GetParam());
  std::vector<double> xs, ys;
  double x = 0.0;
  const int n = 4 + GetParam();
  for (int i = 0; i < n; ++i) {
    x += rng.uniform(0.3, 2.0);
    xs.push_back(x);
    ys.push_back(rng.uniform(-3.0, 3.0));
  }
  const SampleSet s(xs, ys);
  const auto spline = build_cubic_spline(s);
  const auto pchip = build_pchip(s);
  const auto lin = build_linear(s);
  const BarycentricPolynomial poly(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(spline.value(s.x[i]), s.y[i], 1e-9);
    EXPECT_NEAR(pchip.value(s.x[i]), s.y[i], 1e-9);
    EXPECT_NEAR(lin.value(s.x[i]), s.y[i], 1e-9);
    EXPECT_NEAR(poly.value(s.x[i]), s.y[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FamiliesAtKnots, ::testing::Range(0, 8));

}  // namespace
}  // namespace mtperf::interp
