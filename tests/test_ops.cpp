// Unit tests for mtperf::ops — operational laws, bounds, demand extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "ops/bounds.hpp"
#include "ops/demand_table.hpp"
#include "ops/demand_table_io.hpp"
#include "ops/laws.hpp"

namespace mtperf::ops {
namespace {

// -------------------------------------------------------------------- laws

TEST(Laws, UtilizationLaw) {
  EXPECT_DOUBLE_EQ(utilization(10.0, 0.05), 0.5);
  EXPECT_DOUBLE_EQ(utilization(0.0, 0.05), 0.0);
  EXPECT_THROW(utilization(-1.0, 0.05), invalid_argument_error);
}

TEST(Laws, ForcedFlowLaw) {
  EXPECT_DOUBLE_EQ(device_throughput(3.0, 7.0), 21.0);
}

TEST(Laws, ServiceDemandLaw) {
  // D = U / X — the paper's extraction identity.
  EXPECT_DOUBLE_EQ(service_demand(0.93, 100.0), 0.0093);
  EXPECT_THROW(service_demand(0.5, 0.0), invalid_argument_error);
  EXPECT_THROW(service_demand(-0.1, 10.0), invalid_argument_error);
}

TEST(Laws, ServiceDemandFromVisits) {
  EXPECT_DOUBLE_EQ(service_demand_from_visits(4.0, 0.002), 0.008);
}

TEST(Laws, LittlesLawRoundTrip) {
  const double n = littles_population(10.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(n, 15.0);
  EXPECT_DOUBLE_EQ(littles_throughput(n, 0.5, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(littles_response_time(n, 10.0, 1.0), 0.5);
}

TEST(Laws, LittlesResponseClampsAtZero) {
  // Measurement noise can make N/X < Z; the law helper saturates at 0.
  EXPECT_DOUBLE_EQ(littles_response_time(5.0, 10.0, 1.0), 0.0);
}

TEST(Laws, LittlesValidation) {
  EXPECT_THROW(littles_throughput(5.0, 0.0, 0.0), invalid_argument_error);
  EXPECT_THROW(littles_response_time(5.0, 0.0, 1.0), invalid_argument_error);
}

TEST(Laws, NetworkUtilizationEq7) {
  // 1 Gbps link, 1500-byte packets: exactly saturating packet rate is
  // 1e9 / (1500*8) pkt/s; over 10 s that count must give 100%.
  const double saturating = 1e9 / (1500.0 * 8.0) * 10.0;
  EXPECT_NEAR(network_utilization_percent(saturating, 1500, 10.0, 1e9), 100.0,
              1e-9);
  EXPECT_NEAR(network_utilization_percent(saturating / 4, 1500, 10.0, 1e9),
              25.0, 1e-9);
  EXPECT_THROW(network_utilization_percent(1, 1500, 0.0, 1e9),
               invalid_argument_error);
}

// ------------------------------------------------------------------ bounds

TEST(Bounds, MaxAndTotalDemand) {
  const std::vector<double> d{0.1, 0.4, 0.2};
  EXPECT_DOUBLE_EQ(max_demand(d), 0.4);
  EXPECT_DOUBLE_EQ(total_demand(d), 0.7);
  EXPECT_THROW(max_demand(std::vector<double>{}), invalid_argument_error);
}

TEST(Bounds, ThroughputUpperBoundTwoRegimes) {
  const std::vector<double> d{0.1, 0.4};
  BoundsInput in{d, 1.0};
  // Light load: n / (Dtot + Z) = 1 / 1.5.
  EXPECT_NEAR(throughput_upper_bound(in, 1), 1.0 / 1.5, 1e-12);
  // Heavy load: capped by 1 / Dmax = 2.5.
  EXPECT_NEAR(throughput_upper_bound(in, 1000), 2.5, 1e-12);
}

TEST(Bounds, ResponseTimeLowerBoundEq6) {
  const std::vector<double> d{0.1, 0.4};
  BoundsInput in{d, 1.0};
  // Light load floor: Dtot.
  EXPECT_DOUBLE_EQ(response_time_lower_bound(in, 1), 0.5);
  // Heavy load: n * Dmax - Z.
  EXPECT_DOUBLE_EQ(response_time_lower_bound(in, 100), 100 * 0.4 - 1.0);
}

TEST(Bounds, KneePopulation) {
  const std::vector<double> d{0.1, 0.4};
  BoundsInput in{d, 1.0};
  EXPECT_NEAR(knee_population(in), 1.5 / 0.4, 1e-12);
}

TEST(Bounds, BalancedJobBoundsSandwichAsymptotic) {
  const std::vector<double> d{0.2, 0.2, 0.1};
  BoundsInput in{d, 0.5};
  for (double n : {1.0, 5.0, 20.0, 100.0}) {
    const auto bjb = balanced_job_bounds(in, n);
    EXPECT_LE(bjb.throughput_lower, bjb.throughput_upper + 1e-12);
    EXPECT_LE(bjb.throughput_upper, throughput_upper_bound(in, n) + 1e-12);
    EXPECT_GE(bjb.response_upper, bjb.response_lower - 1e-12);
    EXPECT_GE(bjb.response_lower, response_time_lower_bound(in, n) - 1e-9);
  }
}

TEST(Bounds, SingleUserBalancedBoundsAreTight) {
  const std::vector<double> d{0.2, 0.3};
  BoundsInput in{d, 1.0};
  const auto bjb = balanced_job_bounds(in, 1.0);
  // With n = 1 there is no queueing: X = 1 / (D + Z) exactly.
  EXPECT_NEAR(bjb.throughput_lower, 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(bjb.throughput_upper, 1.0 / 1.5, 1e-12);
}

TEST(Bounds, Validation) {
  const std::vector<double> zero{0.0};
  BoundsInput in{zero, 0.0};
  EXPECT_THROW(throughput_upper_bound(in, 1.0), invalid_argument_error);
  const std::vector<double> neg{-0.1};
  BoundsInput in2{neg, 0.0};
  EXPECT_THROW(total_demand(in2.demands), invalid_argument_error);
}

// ------------------------------------------------------------ DemandTable

DemandTable small_table() {
  DemandTable t({"cpu", "disk"}, {4, 1});
  t.add_point({10.0, 5.0, 0.4, {0.20, 0.10}});
  t.add_point({50.0, 20.0, 0.6, {0.60, 0.30}});
  t.add_point({100.0, 25.0, 1.2, {0.70, 0.50}});
  return t;
}

TEST(DemandTable, ExtractsDemandsViaServiceDemandLaw) {
  const DemandTable t = small_table();
  // The cpu station has 4 servers: monitored utilization is a fraction of
  // aggregate capacity, so D = U * C / X.
  const auto cpu = t.demand_vs_concurrency(0);
  ASSERT_EQ(cpu.size(), 3u);
  EXPECT_DOUBLE_EQ(cpu.x[0], 10.0);
  EXPECT_DOUBLE_EQ(cpu.y[0], 0.20 * 4 / 5.0);
  EXPECT_DOUBLE_EQ(cpu.y[2], 0.70 * 4 / 25.0);
  const auto disk = t.demand_vs_concurrency(1);
  EXPECT_DOUBLE_EQ(disk.y[0], 0.10 / 5.0);  // single server: plain U / X
}

TEST(DemandTable, DemandVsThroughputUsesThroughputAxis) {
  const DemandTable t = small_table();
  const auto disk = t.demand_vs_throughput(1);
  ASSERT_EQ(disk.size(), 3u);
  EXPECT_DOUBLE_EQ(disk.x[0], 5.0);
  EXPECT_DOUBLE_EQ(disk.x[2], 25.0);
  EXPECT_DOUBLE_EQ(disk.y[0], 0.10 / 5.0);
  const auto cpu = t.demand_vs_throughput(0);
  EXPECT_DOUBLE_EQ(cpu.y[0], 0.20 * 4 / 5.0);
}

TEST(DemandTable, DemandVsThroughputDropsNonMonotoneDuplicates) {
  DemandTable t({"cpu"}, {1});
  t.add_point({10.0, 5.0, 0.4, {0.2}});
  t.add_point({50.0, 20.0, 0.6, {0.6}});
  t.add_point({100.0, 19.0, 1.2, {0.7}});  // throughput dipped
  const auto s = t.demand_vs_throughput(0);
  // Sorted by X and strictly increasing: 5, 19, 20.
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.x[0], 5.0);
  EXPECT_DOUBLE_EQ(s.x[1], 19.0);
  EXPECT_DOUBLE_EQ(s.x[2], 20.0);
}

TEST(DemandTable, NearestConcurrencyAndFixedDemands) {
  const DemandTable t = small_table();
  EXPECT_DOUBLE_EQ(t.nearest_measured_concurrency(48.0), 50.0);
  EXPECT_DOUBLE_EQ(t.nearest_measured_concurrency(1000.0), 100.0);
  const auto d = t.demands_at_concurrency(55.0);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 0.60 * 4 / 20.0);
  EXPECT_DOUBLE_EQ(d[1], 0.30 / 20.0);
}

TEST(DemandTable, BottleneckIsHighestUtilizationAtTopLoad) {
  const DemandTable t = small_table();
  EXPECT_EQ(t.bottleneck_station(), 0u);  // cpu at 0.70 vs disk 0.50
}

TEST(DemandTable, SeriesAccessors) {
  const DemandTable t = small_table();
  EXPECT_EQ(t.concurrency_series(), (std::vector<double>{10, 50, 100}));
  EXPECT_EQ(t.throughput_series(), (std::vector<double>{5, 20, 25}));
  EXPECT_EQ(t.response_time_series(), (std::vector<double>{0.4, 0.6, 1.2}));
}

TEST(DemandTable, StationIndexLookup) {
  const DemandTable t = small_table();
  EXPECT_EQ(t.station_index("disk"), 1u);
  EXPECT_THROW(t.station_index("gpu"), invalid_argument_error);
}

TEST(DemandTable, RejectsDisorderedOrMalformedRows) {
  DemandTable t({"cpu"}, {1});
  t.add_point({10.0, 5.0, 0.4, {0.2}});
  EXPECT_THROW(t.add_point({10.0, 6.0, 0.4, {0.3}}), invalid_argument_error);
  EXPECT_THROW(t.add_point({20.0, 6.0, 0.4, {0.3, 0.4}}),
               invalid_argument_error);
  EXPECT_THROW(t.add_point({30.0, 0.0, 0.4, {0.3}}), invalid_argument_error);
}

TEST(DemandTable, RejectsBadConstruction) {
  EXPECT_THROW(DemandTable({}, {}), invalid_argument_error);
  EXPECT_THROW(DemandTable({"a"}, {1, 2}), invalid_argument_error);
  EXPECT_THROW(DemandTable({"a"}, {0}), invalid_argument_error);
}


// ---------------------------------------------------------- table persistence

TEST(DemandTableIo, RoundTripPreservesEverything) {
  const DemandTable original = small_table();
  std::ostringstream out;
  save_demand_table(out, original);
  std::istringstream in(out.str());
  const DemandTable loaded = load_demand_table(in);
  EXPECT_EQ(loaded.stations(), original.stations());
  EXPECT_EQ(loaded.servers(), original.servers());
  ASSERT_EQ(loaded.points().size(), original.points().size());
  for (std::size_t i = 0; i < original.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.points()[i].concurrency,
                     original.points()[i].concurrency);
    EXPECT_DOUBLE_EQ(loaded.points()[i].throughput,
                     original.points()[i].throughput);
    EXPECT_DOUBLE_EQ(loaded.points()[i].response_time,
                     original.points()[i].response_time);
    EXPECT_EQ(loaded.points()[i].utilization,
              original.points()[i].utilization);
  }
  // Derived quantities survive the trip too.
  EXPECT_EQ(loaded.bottleneck_station(), original.bottleneck_station());
}

TEST(DemandTableIo, HeaderCarriesServerCounts) {
  std::ostringstream out;
  save_demand_table(out, small_table());
  EXPECT_NE(out.str().find("cpu:4"), std::string::npos);
  EXPECT_NE(out.str().find("disk:1"), std::string::npos);
}

TEST(DemandTableIo, RejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(load_demand_table(in), invalid_argument_error);
  }
  {
    std::istringstream in("bogus,header\n1,2\n");
    EXPECT_THROW(load_demand_table(in), invalid_argument_error);
  }
  {
    std::istringstream in(
        "concurrency,throughput,response_time,cpu:1\n10,5,0.4\n");
    EXPECT_THROW(load_demand_table(in), invalid_argument_error);  // width
  }
  {
    std::istringstream in(
        "concurrency,throughput,response_time,cpu:1\n10,abc,0.4,0.2\n");
    EXPECT_THROW(load_demand_table(in), invalid_argument_error);
  }
  {
    std::istringstream in("concurrency,throughput,response_time,cpu:1\n");
    EXPECT_THROW(load_demand_table(in), invalid_argument_error);  // no rows
  }
  {
    std::istringstream in(
        "concurrency,throughput,response_time,cpunoservers\n10,5,0.4,0.2\n");
    EXPECT_THROW(load_demand_table(in), invalid_argument_error);
  }
}

TEST(DemandTableIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "mtperf_campaign_test.csv";
  save_demand_table_file(path, small_table());
  const DemandTable loaded = load_demand_table_file(path);
  EXPECT_EQ(loaded.points().size(), 3u);
  EXPECT_THROW(load_demand_table_file(path + ".missing"),
               invalid_argument_error);
}

}  // namespace
}  // namespace mtperf::ops
