// Integration tests: the full paper pipeline — simulate load tests, extract
// demands via the Service Demand Law, spline them, predict with the MVA
// family — and the paper's headline claims about which model wins.
//
// These use shortened simulation windows; the bench binaries reproduce the
// full-scale figures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/jpetstore.hpp"
#include "apps/testbed.hpp"
#include "apps/vins.hpp"
#include "common/stats.hpp"
#include "core/demand_model.hpp"
#include "core/mva_multiserver.hpp"
#include "core/mvasd.hpp"
#include "core/network.hpp"
#include "core/prediction.hpp"
#include "interp/cubic_spline.hpp"
#include "ops/bounds.hpp"
#include "workload/campaign.hpp"
#include "workload/test_plan.hpp"

namespace mtperf {
namespace {

workload::CampaignSettings test_settings(double duration = 400.0) {
  workload::CampaignSettings s;
  s.grinder.duration_s = duration;
  s.warmup_fraction = 0.25;
  s.seed = 2026;
  return s;
}

/// Shared fixture: one shortened JPetStore campaign reused by many tests.
class JPetStorePipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto app = apps::make_jpetstore();
    campaign_ = new workload::CampaignResult(workload::run_campaign(
        app, apps::jpetstore_campaign_levels(), test_settings()));
  }
  static void TearDownTestSuite() {
    delete campaign_;
    campaign_ = nullptr;
  }

  static const workload::CampaignResult& campaign() { return *campaign_; }
  static constexpr double kThink = 1.0;
  static constexpr unsigned kMaxUsers = 280;

  static workload::CampaignResult* campaign_;
};

workload::CampaignResult* JPetStorePipeline::campaign_ = nullptr;

TEST_F(JPetStorePipeline, SaturationNear140Users) {
  // Table 3's signature: DB CPU (or disk) utilization crosses ~90% by 140
  // users and the throughput curve flattens beyond.
  const auto& points = campaign().table.points();
  const auto row140 = std::find_if(points.begin(), points.end(), [](auto& p) {
    return p.concurrency == 140.0;
  });
  ASSERT_NE(row140, points.end());
  const double db_cpu = row140->utilization[apps::kDbCpu];
  const double db_disk = row140->utilization[apps::kDbDisk];
  EXPECT_GT(std::max(db_cpu, db_disk), 0.85);
  const double x140 = row140->throughput;
  const double x280 = points.back().throughput;
  EXPECT_LT(std::abs(x280 - x140) / x140, 0.15);  // flat past saturation
}

TEST_F(JPetStorePipeline, BottleneckIdentifiedAtDatabase) {
  const std::size_t b = campaign().table.bottleneck_station();
  EXPECT_TRUE(b == apps::kDbCpu || b == apps::kDbDisk)
      << "bottleneck was " << campaign().table.stations()[b];
}

TEST_F(JPetStorePipeline, MvasdTracksMeasuredThroughputWithinAFewPercent) {
  const auto prediction =
      core::predict_mvasd(campaign().table, kThink, kMaxUsers);
  const auto report = core::deviation_against_measurements(
      "MVASD", prediction, campaign().table, kThink);
  // Paper Table 5 reports ~1-2%; allow slack for the shortened windows.
  EXPECT_LT(report.throughput_deviation_pct, 6.0);
  EXPECT_LT(report.cycle_time_deviation_pct, 6.0);
}

TEST_F(JPetStorePipeline, MvasdBeatsFixedDemandMva) {
  const auto mvasd_report = core::deviation_against_measurements(
      "MVASD", core::predict_mvasd(campaign().table, kThink, kMaxUsers),
      campaign().table, kThink);
  // MVA with single-user demands (the worst choice the paper plots).
  const auto mva1_report = core::deviation_against_measurements(
      "MVA 1", core::predict_mva_fixed(campaign().table, kThink, kMaxUsers, 1),
      campaign().table, kThink);
  EXPECT_LT(mvasd_report.throughput_deviation_pct,
            mva1_report.throughput_deviation_pct);
  EXPECT_LT(mvasd_report.cycle_time_deviation_pct,
            mva1_report.cycle_time_deviation_pct);
}

TEST_F(JPetStorePipeline, MultiServerBeatsSingleServerNormalization) {
  // Fig. 8: MVASD with the exact multi-server model outperforms the S/C
  // normalized single-server variant on this CPU-bound application.
  const auto ms = core::deviation_against_measurements(
      "MVASD", core::predict_mvasd(campaign().table, kThink, kMaxUsers),
      campaign().table, kThink);
  const auto ss = core::deviation_against_measurements(
      "MVASD:SS",
      core::predict_mvasd_single_server(campaign().table, kThink, kMaxUsers),
      campaign().table, kThink);
  EXPECT_LT(ms.throughput_deviation_pct, ss.throughput_deviation_pct);
}

TEST_F(JPetStorePipeline, DemandVsThroughputAxisIsWorseButReasonable) {
  // Section 7: interpolating demands against throughput instead of
  // concurrency degrades accuracy (paper: 6.68% / 6.9%) but stays usable.
  const auto conc = core::deviation_against_measurements(
      "MVASD", core::predict_mvasd(campaign().table, kThink, kMaxUsers),
      campaign().table, kThink);
  const auto thru = core::deviation_against_measurements(
      "MVASD-X",
      core::predict_mvasd(campaign().table, kThink, kMaxUsers,
                          core::DemandModel::Axis::kThroughput),
      campaign().table, kThink);
  EXPECT_GE(thru.throughput_deviation_pct,
            conc.throughput_deviation_pct - 0.5);
  EXPECT_LT(thru.throughput_deviation_pct, 20.0);
}

/// Functional-path reference: the multi-server MVASD recursion evaluated
/// with per-(n, k) DemandModel::at calls and per-level allocations — the
/// pre-DemandGrid implementation, kept here as the parity oracle for the
/// tabulated hot path.
struct ReferenceResult {
  std::vector<double> throughput, response_time;
  std::vector<std::vector<double>> queue, utilization, residence;
};

ReferenceResult reference_mvasd(const core::ClosedNetwork& network,
                                const core::DemandModel& demands,
                                unsigned max_population) {
  const std::size_t k_count = network.size();
  ReferenceResult result;
  std::vector<double> queue(k_count, 0.0), residence(k_count, 0.0);
  std::vector<std::vector<double>> p(k_count), p_next(k_count);
  for (std::size_t k = 0; k < k_count; ++k) {
    p[k].assign(network.station(k).servers, 0.0);
    p[k][0] = 1.0;
    p_next[k].assign(network.station(k).servers, 0.0);
  }
  double previous_throughput = 0.0;
  std::vector<double> s_now(k_count, 0.0);
  for (unsigned n = 1; n <= max_population; ++n) {
    const double axis_value =
        demands.axis() == core::DemandModel::Axis::kConcurrency
            ? static_cast<double>(n)
            : previous_throughput;
    for (std::size_t k = 0; k < k_count; ++k) {
      s_now[k] = demands.at(k, axis_value);
    }
    double total_residence = 0.0;
    for (std::size_t k = 0; k < k_count; ++k) {
      const core::Station& st = network.station(k);
      double wait;
      if (st.kind == core::StationKind::kDelay) {
        wait = s_now[k];
      } else if (st.servers == 1) {
        wait = s_now[k] * (1.0 + queue[k]);
      } else {
        const auto c = static_cast<double>(st.servers);
        double f = 0.0;
        for (unsigned j = 0; j + 1 < st.servers; ++j) {
          f += (c - 1.0 - static_cast<double>(j)) * p[k][j];
        }
        wait = s_now[k] / c * (1.0 + queue[k] + f);
      }
      residence[k] = st.visits * wait;
      total_residence += residence[k];
    }
    const double x =
        static_cast<double>(n) / (total_residence + network.think_time());
    std::vector<double> util(k_count, 0.0);
    for (std::size_t k = 0; k < k_count; ++k) {
      const core::Station& st = network.station(k);
      queue[k] = x * residence[k];
      util[k] = x * st.visits * s_now[k] / static_cast<double>(st.servers);
      if (st.kind == core::StationKind::kQueueing && st.servers > 1) {
        const double xs = x * st.visits * s_now[k];
        const auto c = static_cast<double>(st.servers);
        if (xs >= c) {
          std::fill(p[k].begin(), p[k].end(), 0.0);
        } else {
          double weighted_tail = 0.0;
          for (unsigned j = st.servers - 1; j >= 1; --j) {
            p_next[k][j] = xs * p[k][j - 1] / static_cast<double>(j);
            weighted_tail += (c - static_cast<double>(j)) * p_next[k][j];
          }
          const double idle = c - xs;
          if (weighted_tail > idle && weighted_tail > 0.0) {
            const double scale = idle / weighted_tail;
            for (unsigned j = 1; j < st.servers; ++j) p_next[k][j] *= scale;
            p_next[k][0] = 0.0;
          } else {
            p_next[k][0] = (idle - weighted_tail) / c;
          }
          std::swap(p[k], p_next[k]);
        }
      }
    }
    result.throughput.push_back(x);
    result.response_time.push_back(total_residence);
    result.queue.push_back(queue);
    result.utilization.push_back(util);
    result.residence.push_back(residence);
    previous_throughput = x;
  }
  return result;
}

void expect_relative_parity(const core::MvaResult& got,
                            const ReferenceResult& want, double tol) {
  ASSERT_EQ(got.levels(), want.throughput.size());
  const auto close = [tol](double a, double b) {
    const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
    return std::abs(a - b) / scale <= tol;
  };
  for (std::size_t i = 0; i < got.levels(); ++i) {
    ASSERT_TRUE(close(got.throughput[i], want.throughput[i])) << "X at " << i;
    ASSERT_TRUE(close(got.response_time[i], want.response_time[i]))
        << "R at " << i;
    for (std::size_t k = 0; k < got.stations(); ++k) {
      ASSERT_TRUE(close(got.queue(i, k), want.queue[i][k]))
          << "Q at " << i << "," << k;
      ASSERT_TRUE(close(got.utilization(i, k), want.utilization[i][k]))
          << "U at " << i << "," << k;
      ASSERT_TRUE(close(got.residence(i, k), want.residence[i][k]))
          << "Res at " << i << "," << k;
    }
  }
}

TEST_F(JPetStorePipeline, GridSolveMatchesFunctionalReference) {
  // The tabulated DemandGrid hot path must reproduce the functional-path
  // recursion to ~machine precision (<= 1e-12 relative on every series).
  const auto network = core::network_from_table(campaign().table, kThink);
  const auto demands = core::DemandModel::from_table(campaign().table);
  const auto got = core::mvasd(network, demands, kMaxUsers);
  const auto want = reference_mvasd(network, demands, kMaxUsers);
  expect_relative_parity(got, want, 1e-12);
}

TEST_F(JPetStorePipeline, GridSolveMatchesFunctionalReferenceThroughputAxis) {
  const auto network = core::network_from_table(campaign().table, kThink);
  const auto demands = core::DemandModel::from_table(
      campaign().table, core::DemandModel::Axis::kThroughput);
  const auto got = core::mvasd(network, demands, kMaxUsers);
  const auto want = reference_mvasd(network, demands, kMaxUsers);
  expect_relative_parity(got, want, 1e-12);
}

TEST(VinsGridParity, GridSolveMatchesFunctionalReference) {
  // Same parity check on a VINS-shaped model built from the application's
  // ground-truth demand laws (no simulation needed).
  const auto app = apps::make_vins();
  const std::size_t k_count = app.stations().size();
  std::vector<std::string> names;
  std::vector<unsigned> servers;
  for (const auto& st : app.stations()) {
    names.push_back(st.name);
    servers.push_back(st.servers);
  }
  const auto network = core::make_network(names, servers, app.think_time());
  std::vector<std::shared_ptr<const interp::Interpolator1D>> splines;
  const std::vector<double> knots{1, 100, 400, 800, 1500};
  for (std::size_t k = 0; k < k_count; ++k) {
    std::vector<double> ys;
    for (double n : knots) ys.push_back(app.true_demand(k, n));
    splines.push_back(std::make_shared<interp::PiecewiseCubic>(
        interp::build_cubic_spline(interp::SampleSet(knots, ys))));
  }
  const auto demands = core::DemandModel::interpolated(std::move(splines));
  const auto got = core::mvasd(network, demands, 1500);
  const auto want = reference_mvasd(network, demands, 1500);
  expect_relative_parity(got, want, 1e-12);
}

TEST_F(JPetStorePipeline, PredictedDbUtilizationTracksMeasured) {
  // Fig. 9: MVASD's per-station utilization curves follow the monitors.
  const auto prediction =
      core::predict_mvasd(campaign().table, kThink, kMaxUsers);
  for (const auto& point : campaign().table.points()) {
    const std::size_t row =
        prediction.row_for(static_cast<unsigned>(point.concurrency));
    for (std::size_t k : {static_cast<std::size_t>(apps::kDbCpu),
                          static_cast<std::size_t>(apps::kDbDisk)}) {
      const double measured = point.utilization[k];
      const double predicted = prediction.utilization(row, k);
      EXPECT_NEAR(predicted, measured, 0.10)
          << "station " << k << " at N=" << point.concurrency;
    }
  }
}

TEST_F(JPetStorePipeline, PredictionsRespectOperationalBounds) {
  const auto prediction =
      core::predict_mvasd(campaign().table, kThink, kMaxUsers);
  // Capacity-aware asymptotic bound for multi-server stations:
  //   X(n) <= min( n / (Dtot + Z),  min_k C_k / D_k ).
  // Evaluate it with the demands measured at the row nearest each n
  // (demands vary with load, so each row bounds its own neighbourhood);
  // 15% slack absorbs monitor noise in the shortened campaign.
  const auto& servers = campaign().table.servers();
  for (unsigned n : {1u, 14u, 28u, 140u, 280u}) {
    const auto d = campaign().table.demands_at_concurrency(n);
    double dtot = 0.0;
    double capacity = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < d.size(); ++k) {
      dtot += d[k];
      if (d[k] > 0.0) {
        capacity = std::min(capacity, static_cast<double>(servers[k]) / d[k]);
      }
    }
    const double bound = std::min(static_cast<double>(n) / (dtot + kThink),
                                  capacity);
    EXPECT_LE(prediction.throughput[prediction.row_for(n)], bound * 1.15)
        << "n=" << n;
  }
}

// --------------------------------------------------------------- VINS side

TEST(VinsPipeline, DiskBottleneckAndMvasdAccuracy) {
  const auto app = apps::make_vins();
  // Shortened campaign on a reduced range to keep the test fast.
  const std::vector<unsigned> levels{1, 23, 57, 102, 203, 373, 680};
  const auto campaign =
      workload::run_campaign(app, levels, test_settings(300.0));

  // Table 2 signature: DB disk is the saturated bottleneck, DB CPU modest.
  const auto& last = campaign.table.points().back();
  EXPECT_GT(last.utilization[apps::kDbDisk], 0.80);
  EXPECT_LT(last.utilization[apps::kDbCpu], 0.60);
  const std::size_t b = campaign.table.bottleneck_station();
  EXPECT_TRUE(b == apps::kDbDisk || b == apps::kLoadDisk);

  const auto mvasd_report = core::deviation_against_measurements(
      "MVASD", core::predict_mvasd(campaign.table, 1.0, 680),
      campaign.table, 1.0);
  // Paper Table 4: < 3% X, < 9% R+Z; slack for shortened windows.
  EXPECT_LT(mvasd_report.throughput_deviation_pct, 8.0);
  EXPECT_LT(mvasd_report.cycle_time_deviation_pct, 10.0);

  const auto mva1_report = core::deviation_against_measurements(
      "MVA 1", core::predict_mva_fixed(campaign.table, 1.0, 680, 1),
      campaign.table, 1.0);
  EXPECT_LT(mvasd_report.throughput_deviation_pct,
            mva1_report.throughput_deviation_pct);
}

// ------------------------------------------------- Chebyshev sampling (Fig. 16)

TEST(ChebyshevPipeline, ThreeNodesAlreadyPredictWell) {
  const auto app = apps::make_jpetstore();
  const auto levels = workload::plan_concurrency_levels(
      1, 300, 3, workload::SamplingStrategy::kChebyshev, 1,
      /*include_single_user=*/true);
  const auto campaign = workload::run_campaign(app, levels, test_settings());

  // Dense reference campaign for the measured series.
  const auto reference = workload::run_campaign(
      app, apps::jpetstore_campaign_levels(), test_settings());

  const auto prediction = core::predict_mvasd(campaign.table, 1.0, 280);
  const auto report = core::deviation_against_measurements(
      "MVASD (Chebyshev 3)", prediction, reference.table, 1.0);
  EXPECT_LT(report.throughput_deviation_pct, 8.0);
}

}  // namespace
}  // namespace mtperf
