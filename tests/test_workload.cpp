// Unit tests for mtperf::workload — Grinder configuration, application
// models, monitors, test plans, and the campaign runner.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "ops/laws.hpp"
#include "workload/application.hpp"
#include "workload/campaign.hpp"
#include "workload/grinder.hpp"
#include "workload/monitors.hpp"
#include "workload/report.hpp"
#include "workload/test_plan.hpp"

namespace mtperf::workload {
namespace {

// ----------------------------------------------------------------- Grinder

TEST(Grinder, VirtualUserArithmetic) {
  GrinderConfig cfg;
  cfg.agents = 2;
  cfg.processes = 4;
  cfg.threads = 25;
  EXPECT_EQ(cfg.virtual_users(), 200u);  // the paper's formula
}

TEST(Grinder, PropertiesRoundTrip) {
  GrinderConfig cfg;
  cfg.script = "renew_policy.py";
  cfg.processes = 8;
  cfg.threads = 10;
  cfg.runs = 100;
  cfg.duration_s = 1200.0;
  cfg.initial_sleep_time_s = 5.0;
  cfg.process_increment = 2;
  cfg.process_increment_interval_s = 30.0;
  const GrinderConfig parsed = GrinderConfig::from_properties(cfg.to_properties());
  EXPECT_EQ(parsed.script, "renew_policy.py");
  EXPECT_EQ(parsed.processes, 8u);
  EXPECT_EQ(parsed.threads, 10u);
  EXPECT_EQ(parsed.runs, 100u);
  EXPECT_DOUBLE_EQ(parsed.duration_s, 1200.0);
  EXPECT_DOUBLE_EQ(parsed.initial_sleep_time_s, 5.0);
  EXPECT_EQ(parsed.process_increment, 2u);
  EXPECT_DOUBLE_EQ(parsed.process_increment_interval_s, 30.0);
}

TEST(Grinder, ParserIgnoresCommentsAndUnknownKeys) {
  const auto cfg = GrinderConfig::from_properties(
      "# a comment\n"
      "grinder.threads = 7  # trailing comment\n"
      "grinder.jvm.arguments = -Xmx512m\n"
      "not a property line\n");
  EXPECT_EQ(cfg.threads, 7u);
}

TEST(Grinder, ParserRejectsMalformedNumbers) {
  EXPECT_THROW(GrinderConfig::from_properties("grinder.threads = many\n"),
               invalid_argument_error);
}

TEST(Grinder, RampIntervalFromProcessIncrements) {
  GrinderConfig cfg;
  cfg.threads = 10;
  cfg.process_increment = 2;
  cfg.process_increment_interval_s = 60.0;
  // 2 processes * 10 threads = 20 users per 60 s -> 3 s per user.
  EXPECT_DOUBLE_EQ(cfg.per_user_ramp_interval(), 3.0);
  cfg.process_increment = 0;
  EXPECT_DOUBLE_EQ(cfg.per_user_ramp_interval(), 0.0);
}

TEST(Grinder, ToSimOptionsSplitsWarmup) {
  GrinderConfig cfg;
  cfg.threads = 5;
  cfg.duration_s = 1000.0;
  const auto opt = cfg.to_sim_options(1.0, 77, 0.3);
  EXPECT_EQ(opt.customers, 5u);
  EXPECT_DOUBLE_EQ(opt.warmup_time, 300.0);
  EXPECT_DOUBLE_EQ(opt.measure_time, 700.0);
  EXPECT_EQ(opt.seed, 77u);
  EXPECT_THROW(cfg.to_sim_options(1.0, 1, 1.5), invalid_argument_error);
}


TEST(Grinder, SleepTimeVariationMapsToThinkDistribution) {
  GrinderConfig cfg;
  cfg.threads = 3;
  cfg.duration_s = 100.0;
  cfg.sleep_time_variation = 0.5;
  const auto opt = cfg.to_sim_options(1.0, 1);
  ASSERT_TRUE(opt.think_distribution.has_value());
  EXPECT_EQ(opt.think_distribution->kind, sim::DistributionKind::kLogNormal);
  EXPECT_DOUBLE_EQ(opt.think_distribution->cv, 0.5);
  cfg.sleep_time_variation = 0.0;
  EXPECT_FALSE(cfg.to_sim_options(1.0, 1).think_distribution.has_value());
}

TEST(Grinder, VariedThinkTimePreservesMeanThroughput) {
  // Think-time variability does not change mean cycle time for a delay
  // (think) stage, so single-user throughput stays 1 / (D + Z).
  GrinderConfig cfg;
  cfg.threads = 1;
  cfg.duration_s = 2000.0;
  cfg.sleep_time_variation = 0.8;
  auto opt = cfg.to_sim_options(1.0, 5);
  const std::vector<sim::SimStation> stations{{"cpu", 1}};
  const std::vector<sim::SimVisit> flow{{0, 0.06}};
  const auto r = sim::simulate_closed_network(stations, flow, opt);
  EXPECT_NEAR(r.throughput, 1.0 / (0.06 + 1.0), 0.05);
}

// ------------------------------------------------------------ ScalingLaws

TEST(ScalingLaws, ConstantIsOne) {
  const auto law = constant_law();
  EXPECT_DOUBLE_EQ(law(1.0), 1.0);
  EXPECT_DOUBLE_EQ(law(1000.0), 1.0);
}

TEST(ScalingLaws, CachingLawDecaysToFloor) {
  const auto law = caching_law(0.6, 50.0);
  EXPECT_DOUBLE_EQ(law(1.0), 1.0);
  EXPECT_GT(law(25.0), 0.6);
  EXPECT_NEAR(law(100000.0), 0.6, 1e-6);
  // monotone decreasing
  double prev = law(1.0);
  for (double n = 2.0; n < 500.0; n *= 1.5) {
    EXPECT_LE(law(n), prev);
    prev = law(n);
  }
}

TEST(ScalingLaws, ContentionLawSaturatesAtOnePlusSlope) {
  const auto law = contention_law(0.4, 30.0);
  EXPECT_DOUBLE_EQ(law(1.0), 1.0);
  EXPECT_NEAR(law(1e9), 1.4, 1e-6);
}

TEST(ScalingLaws, Validation) {
  EXPECT_THROW(caching_law(0.0, 10.0), invalid_argument_error);
  EXPECT_THROW(caching_law(1.5, 10.0), invalid_argument_error);
  EXPECT_THROW(caching_law(0.5, 0.0), invalid_argument_error);
  EXPECT_THROW(contention_law(-0.1, 10.0), invalid_argument_error);
}

// ------------------------------------------------------- ApplicationModel

ApplicationModel tiny_app() {
  std::vector<sim::SimStation> stations{{"cpu", 2}, {"disk", 1}};
  std::vector<Page> pages{{"p1", {0.02, 0.01}}, {"p2", {0.03, 0.00}}};
  std::vector<ScalingLaw> laws{caching_law(0.5, 10.0), constant_law()};
  return ApplicationModel("tiny", std::move(stations), std::move(pages),
                          std::move(laws), 1.0);
}

TEST(ApplicationModel, TrueDemandSumsPagesAndScales) {
  const auto app = tiny_app();
  EXPECT_DOUBLE_EQ(app.true_demand(0, 1.0), 0.05);  // law(1) = 1
  EXPECT_DOUBLE_EQ(app.true_demand(1, 1.0), 0.01);
  // At large n the cpu law floor halves the demand.
  EXPECT_NEAR(app.true_demand(0, 1e6), 0.025, 1e-6);
  EXPECT_DOUBLE_EQ(app.true_demand(1, 1e6), 0.01);
}

TEST(ApplicationModel, WorkflowSkipsZeroDemandVisits) {
  const auto app = tiny_app();
  const auto flow = app.workflow(1.0);
  // p1 visits cpu+disk, p2 visits cpu only -> 3 visits.
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow[0].station, 0u);
  EXPECT_EQ(flow[1].station, 1u);
  EXPECT_EQ(flow[2].station, 0u);
}

TEST(ApplicationModel, WorkflowDemandsSumToTrueDemand) {
  const auto app = tiny_app();
  for (double n : {1.0, 5.0, 50.0}) {
    const auto flow = app.workflow(n);
    double cpu = 0.0;
    for (const auto& v : flow) {
      if (v.station == 0) cpu += v.mean_service_time;
    }
    EXPECT_NEAR(cpu, app.true_demand(0, n), 1e-12);
  }
}

TEST(ApplicationModel, Validation) {
  std::vector<sim::SimStation> stations{{"cpu", 1}};
  std::vector<ScalingLaw> laws{constant_law()};
  EXPECT_THROW(ApplicationModel("x", stations, {{"p", {0.1, 0.2}}}, laws, 1.0),
               invalid_argument_error);  // page width mismatch
  EXPECT_THROW(ApplicationModel("x", stations, {}, laws, 1.0),
               invalid_argument_error);
  EXPECT_THROW(ApplicationModel("x", stations, {{"p", {0.1}}}, {}, 1.0),
               invalid_argument_error);
  const auto app = tiny_app();
  EXPECT_THROW(app.true_demand(5, 1.0), invalid_argument_error);
  EXPECT_THROW(app.workflow(0.5), invalid_argument_error);
}

// ---------------------------------------------------------------- monitors

TEST(Monitors, PacketCountersInvertEq7) {
  const auto counters = emulate_packet_counters(0.25, 10.0);
  // Re-applying Eq. 7 must recover 25%.
  const double util = ops::network_utilization_percent(
      counters.packets, counters.packet_size_bytes, counters.interval_seconds,
      counters.bandwidth_bps);
  EXPECT_NEAR(util, 25.0, 1e-9);
}

TEST(Monitors, CollectReadingsRoundTripsNetworkStations) {
  sim::SimResult result;
  result.stations = {{"db/cpu", 16, 0.35, 2.0, 100},
                     {"db/net-tx", 1, 0.10, 0.1, 100}};
  const auto readings = collect_readings(result, 60.0);
  ASSERT_EQ(readings.size(), 2u);
  EXPECT_NEAR(readings[0].utilization, 0.35, 1e-12);  // vmstat path
  EXPECT_NEAR(readings[1].utilization, 0.10, 1e-9);   // netstat path
}

// --------------------------------------------------------------- test plan

TEST(TestPlan, ChebyshevMatchesPaperNodes) {
  const auto plan = plan_concurrency_levels(1, 300, 3,
                                            SamplingStrategy::kChebyshev);
  EXPECT_EQ(plan, (std::vector<unsigned>{22, 151, 280}));
}

TEST(TestPlan, EquispacedCoversRange) {
  const auto plan = plan_concurrency_levels(1, 100, 5,
                                            SamplingStrategy::kEquispaced);
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan.front(), 1u);
  EXPECT_EQ(plan.back(), 100u);
}

TEST(TestPlan, RandomIsSortedUniqueInRange) {
  const auto plan =
      plan_concurrency_levels(10, 500, 6, SamplingStrategy::kRandom, 99);
  ASSERT_EQ(plan.size(), 6u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(plan[i], 10u);
    EXPECT_LE(plan[i], 500u);
    if (i) EXPECT_GT(plan[i], plan[i - 1]);
  }
}

TEST(TestPlan, IncludeSingleUserAnchorsSplines) {
  const auto plan = plan_concurrency_levels(
      1, 300, 3, SamplingStrategy::kChebyshev, 1, /*include_single_user=*/true);
  EXPECT_EQ(plan.front(), 1u);
  EXPECT_EQ(plan.size(), 4u);
}

TEST(TestPlan, Validation) {
  EXPECT_THROW(plan_concurrency_levels(0, 10, 3, SamplingStrategy::kChebyshev),
               invalid_argument_error);
  EXPECT_THROW(plan_concurrency_levels(10, 10, 3, SamplingStrategy::kChebyshev),
               invalid_argument_error);
  EXPECT_THROW(plan_concurrency_levels(1, 10, 0, SamplingStrategy::kChebyshev),
               invalid_argument_error);
}

// ---------------------------------------------------------------- campaign

CampaignSettings quick_settings() {
  CampaignSettings s;
  s.grinder.duration_s = 240.0;
  s.warmup_fraction = 0.25;
  s.seed = 5;
  return s;
}

TEST(Campaign, ProducesOneRowPerLevel) {
  const auto app = tiny_app();
  const auto result = run_campaign(app, {1, 4, 8}, quick_settings());
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.table.points().size(), 3u);
  EXPECT_EQ(result.pages_per_transaction, 2u);
  EXPECT_EQ(result.table.stations().size(), 2u);
  // Throughput grows with offered load below saturation.
  EXPECT_GT(result.table.points()[2].throughput,
            result.table.points()[0].throughput);
}

TEST(Campaign, ExtractedDemandsApproximateTrueDemands) {
  const auto app = tiny_app();
  CampaignSettings s = quick_settings();
  s.grinder.duration_s = 1200.0;
  const auto result = run_campaign(app, {1, 6, 12}, s);
  const auto cpu = result.table.demand_vs_concurrency(0);
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    const double truth = app.true_demand(0, cpu.x[i]);
    EXPECT_NEAR(cpu.y[i], truth, 0.12 * truth) << "level " << cpu.x[i];
  }
}

TEST(Campaign, ParallelAndSequentialAgree) {
  const auto app = tiny_app();
  CampaignSettings s = quick_settings();
  const auto seq = run_campaign(app, {1, 4}, s);
  ThreadPool pool(2);
  s.pool = &pool;
  const auto par = run_campaign(app, {1, 4}, s);
  ASSERT_EQ(seq.runs.size(), par.runs.size());
  for (std::size_t i = 0; i < seq.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.runs[i].sim.throughput, par.runs[i].sim.throughput);
  }
}

TEST(Campaign, ReplicatedLevelsMergeDeterministically) {
  // R > 1 runs a flat level x replication grid; the merged per-level
  // results must carry an across-replication CI and be bit-identical
  // whether the grid ran on a pool or sequentially.
  const auto app = tiny_app();
  CampaignSettings s = quick_settings();
  s.replications = 3;
  const auto seq = run_campaign(app, {2, 5}, s);
  ThreadPool pool(4);
  s.pool = &pool;
  const auto par = run_campaign(app, {2, 5}, s);
  ASSERT_EQ(seq.runs.size(), 2u);
  for (std::size_t i = 0; i < seq.runs.size(); ++i) {
    EXPECT_EQ(seq.runs[i].replications, 3u);
    EXPECT_GT(seq.runs[i].throughput_ci.half_width, 0.0);
    EXPECT_EQ(seq.runs[i].sim.transactions, par.runs[i].sim.transactions);
    EXPECT_EQ(seq.runs[i].sim.throughput, par.runs[i].sim.throughput);
    EXPECT_EQ(seq.runs[i].sim.response_time, par.runs[i].sim.response_time);
    EXPECT_EQ(seq.runs[i].throughput_ci.half_width,
              par.runs[i].throughput_ci.half_width);
  }
  // One replication keeps the old single-run behaviour (CI collapses).
  s.replications = 1;
  s.pool = nullptr;
  const auto single = run_campaign(app, {2, 5}, s);
  EXPECT_EQ(single.runs[0].throughput_ci.half_width, 0.0);
}

TEST(Campaign, RejectsUnsortedLevels) {
  const auto app = tiny_app();
  EXPECT_THROW(run_campaign(app, {4, 1}, quick_settings()),
               invalid_argument_error);
  EXPECT_THROW(run_campaign(app, {}, quick_settings()),
               invalid_argument_error);
}

TEST(Campaign, PageThroughputScalesTransactions) {
  const auto app = tiny_app();
  const auto result = run_campaign(app, {2}, quick_settings());
  const auto pages = result.page_throughput_series();
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_NEAR(pages[0], result.runs[0].sim.throughput * 2.0, 1e-12);
}

// ------------------------------------------------------------------ report

TEST(Report, UtilizationTableRendersGroupsAndRows) {
  std::vector<sim::SimStation> stations{{"db/cpu", 2}, {"db/disk", 1}};
  std::vector<Page> pages{{"p", {0.02, 0.01}}};
  std::vector<ScalingLaw> laws{constant_law(), constant_law()};
  const ApplicationModel app("t", stations, pages, laws, 1.0);
  const auto result = run_campaign(app, {1, 3}, quick_settings());
  const std::string table = utilization_table(result, "Table X").to_string();
  EXPECT_NE(table.find("Table X"), std::string::npos);
  EXPECT_NE(table.find("db"), std::string::npos);
  EXPECT_NE(table.find("cpu"), std::string::npos);
  const std::string meas = measurement_table(result, "Grinder").to_string();
  EXPECT_NE(meas.find("Throughput"), std::string::npos);
}

}  // namespace
}  // namespace mtperf::workload
