// Deterministic parallel replications (sim/replicated.hpp): seeding
// discipline, bit-identical merges across pool sizes, exact R = 1
// degeneration to the plain run, and the statistical payoff (CI width
// shrinking like 1/sqrt(R)).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "sim/closed_network_sim.hpp"
#include "sim/replicated.hpp"

namespace mtperf::sim {
namespace {

const std::vector<SimStation> kMm1Stations{{"cpu", 1}};
const std::vector<SimVisit> kMm1Flow{{0, 0.4}};

ReplicatedSimOptions mm1_options(unsigned replications, std::uint64_t seed) {
  ReplicatedSimOptions o;
  o.base.customers = 3;
  o.base.think_time_mean = 1.0;
  o.base.warmup_time = 30.0;
  o.base.measure_time = 200.0;
  o.replications = replications;
  o.base_seed = seed;
  return o;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.response_time, b.response_time);
  EXPECT_EQ(a.cycle_time, b.cycle_time);
  EXPECT_EQ(a.response_time_ci.mean, b.response_time_ci.mean);
  EXPECT_EQ(a.response_time_ci.half_width, b.response_time_ci.half_width);
  EXPECT_EQ(a.response_percentiles.p50, b.response_percentiles.p50);
  EXPECT_EQ(a.response_percentiles.p90, b.response_percentiles.p90);
  EXPECT_EQ(a.response_percentiles.p95, b.response_percentiles.p95);
  EXPECT_EQ(a.response_percentiles.p99, b.response_percentiles.p99);
  ASSERT_EQ(a.stations.size(), b.stations.size());
  for (std::size_t k = 0; k < a.stations.size(); ++k) {
    EXPECT_EQ(a.stations[k].utilization, b.stations[k].utilization);
    EXPECT_EQ(a.stations[k].mean_jobs, b.stations[k].mean_jobs);
    EXPECT_EQ(a.stations[k].completions, b.stations[k].completions);
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].throughput, b.timeline[i].throughput);
    EXPECT_EQ(a.timeline[i].response_time, b.timeline[i].response_time);
  }
}

TEST(ReplicationSeed, RepZeroIsBaseAndStreamsAreDistinct) {
  EXPECT_EQ(replication_seed(42, 0), 42u);
  std::set<std::uint64_t> seeds;
  for (unsigned rep = 0; rep < 64; ++rep) {
    seeds.insert(replication_seed(42, rep));
  }
  EXPECT_EQ(seeds.size(), 64u);  // no collisions across the stream
  // Deterministic function of (base, rep), not of call order.
  EXPECT_EQ(replication_seed(42, 7), replication_seed(42, 7));
  EXPECT_NE(replication_seed(42, 7), replication_seed(43, 7));
}

TEST(ReplicatedSim, SingleReplicationReproducesPlainRunExactly) {
  const auto opts = mm1_options(1, 9001);
  SimOptions plain = opts.base;
  plain.seed = 9001;
  const auto expected = simulate_closed_network(kMm1Stations, kMm1Flow, plain);
  const auto replicated =
      simulate_replicated(kMm1Stations, kMm1Flow, opts);
  EXPECT_EQ(replicated.replications, 1u);
  expect_identical(replicated.merged, expected);
  // The degenerate across-replication throughput CI collapses to a point.
  EXPECT_EQ(replicated.throughput_ci.mean, expected.throughput);
  EXPECT_EQ(replicated.throughput_ci.half_width, 0.0);
}

TEST(ReplicatedSim, BitIdenticalAcrossPoolSizes) {
  auto opts = mm1_options(6, 1234);
  opts.base.timeline_bucket = 25.0;  // exercise the timeline merge too
  const auto sequential = simulate_replicated(kMm1Stations, kMm1Flow, opts);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    opts.pool = &pool;
    const auto parallel = simulate_replicated(kMm1Stations, kMm1Flow, opts);
    SCOPED_TRACE("pool size " + std::to_string(workers));
    expect_identical(parallel.merged, sequential.merged);
    EXPECT_EQ(parallel.throughput_ci.mean, sequential.throughput_ci.mean);
    EXPECT_EQ(parallel.throughput_ci.half_width,
              sequential.throughput_ci.half_width);
  }
}

TEST(ReplicatedSim, MergedTransactionsAndThroughputPool) {
  const auto r = simulate_replicated(kMm1Stations, kMm1Flow,
                                     mm1_options(4, 55));
  ASSERT_EQ(r.per_replication.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& rep : r.per_replication) total += rep.transactions;
  EXPECT_EQ(r.merged.transactions, total);
  EXPECT_NEAR(r.merged.throughput,
              static_cast<double>(total) / (4.0 * 200.0), 1e-12);
  // Replications are genuinely different realizations.
  EXPECT_NE(r.per_replication[0].transactions,
            r.per_replication[1].transactions);
}

TEST(ReplicatedSim, PooledPercentilesMatchConcatenatedSample) {
  const auto opts = mm1_options(3, 77);
  // Gather each replication's raw sample through the extended entry point
  // and pool by hand; the merge must agree exactly.
  std::vector<double> all;
  for (unsigned rep = 0; rep < 3; ++rep) {
    std::vector<double> samples;
    simulate_closed_network(kMm1Stations, kMm1Flow,
                            replication_options(opts, rep), &samples, nullptr);
    all.insert(all.end(), samples.begin(), samples.end());
  }
  const auto q = percentiles(all, {50, 90, 95, 99});
  const auto merged = simulate_replicated(kMm1Stations, kMm1Flow, opts);
  EXPECT_EQ(merged.merged.response_percentiles.p50, q[0]);
  EXPECT_EQ(merged.merged.response_percentiles.p90, q[1]);
  EXPECT_EQ(merged.merged.response_percentiles.p95, q[2]);
  EXPECT_EQ(merged.merged.response_percentiles.p99, q[3]);
}

TEST(ReplicatedSim, PooledResponseMeanIsTransactionWeighted) {
  const auto r = simulate_replicated(kMm1Stations, kMm1Flow,
                                     mm1_options(5, 31));
  double weighted = 0.0;
  double count = 0.0;
  for (const auto& rep : r.per_replication) {
    weighted += rep.response_time * static_cast<double>(rep.transactions);
    count += static_cast<double>(rep.transactions);
  }
  EXPECT_NEAR(r.merged.response_time, weighted / count, 1e-9);
}

TEST(ReplicatedSim, VisitWeightedUtilizationMatchesManualMerge) {
  const auto r = simulate_replicated(kMm1Stations, kMm1Flow,
                                     mm1_options(4, 100));
  double weighted = 0.0;
  double weight = 0.0;
  for (const auto& rep : r.per_replication) {
    const auto& st = rep.stations[0];
    weighted += st.utilization * static_cast<double>(st.completions);
    weight += static_cast<double>(st.completions);
  }
  EXPECT_EQ(r.merged.stations[0].utilization, weighted / weight);
}

TEST(ReplicatedSim, CiWidthShrinksLikeInverseSqrtReplications) {
  // Same per-replication window, 4x the replications: the across-
  // replication CI half-width should shrink by about sqrt(4) = 2 (the t
  // quantile also tightens with df, helping the ratio along).
  const auto narrow = simulate_replicated(kMm1Stations, kMm1Flow,
                                          mm1_options(4, 2024));
  const auto wide = simulate_replicated(kMm1Stations, kMm1Flow,
                                        mm1_options(16, 2024));
  ASSERT_GT(narrow.merged.response_time_ci.half_width, 0.0);
  ASSERT_GT(wide.merged.response_time_ci.half_width, 0.0);
  const double ratio = wide.merged.response_time_ci.half_width /
                       narrow.merged.response_time_ci.half_width;
  // Expected ~0.5 with wide statistical slack (one realization only).
  EXPECT_LT(ratio, 0.9);
  EXPECT_GT(ratio, 0.15);
}

TEST(ReplicatedSim, SplitMeasureTimeKeepsBudgetAndEstimate) {
  auto whole = mm1_options(1, 321);
  whole.base.measure_time = 400.0;
  const auto one = simulate_replicated(kMm1Stations, kMm1Flow, whole);

  auto split = mm1_options(4, 321);
  split.base.measure_time = 400.0;
  split.split_measure_time = true;
  const auto four = simulate_replicated(kMm1Stations, kMm1Flow, split);
  // Each replication measured a quarter window.
  EXPECT_EQ(replication_options(split, 2).measure_time, 100.0);
  // Same total budget, so the pooled estimates agree statistically.
  EXPECT_NEAR(four.merged.throughput, one.merged.throughput,
              0.1 * one.merged.throughput);
  EXPECT_NEAR(four.merged.response_time, one.merged.response_time,
              0.15 * one.merged.response_time);
}

TEST(ReplicatedSim, AcrossReplicationCiCoversPooledMean) {
  const auto r = simulate_replicated(kMm1Stations, kMm1Flow,
                                     mm1_options(8, 17));
  EXPECT_GT(r.merged.response_time_ci.half_width, 0.0);
  EXPECT_TRUE(r.merged.response_time_ci.contains(r.merged.response_time));
  EXPECT_GT(r.throughput_ci.half_width, 0.0);
  EXPECT_TRUE(r.throughput_ci.contains(r.merged.throughput));
}

TEST(ReplicatedSim, Validation) {
  auto opts = mm1_options(0, 1);
  EXPECT_THROW(simulate_replicated(kMm1Stations, kMm1Flow, opts),
               invalid_argument_error);
  EXPECT_THROW(replication_options(mm1_options(4, 1), 4),
               invalid_argument_error);
}

}  // namespace
}  // namespace mtperf::sim
