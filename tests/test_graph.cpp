// Tests for the service-graph workmodel layer: visit-count equations,
// compilation onto core::Network / DemandModel / the simulator, parity of
// graph-compiled VINS and JPetStore against hand-built networks, and the
// JSON workmodel loader.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "apps/jpetstore.hpp"
#include "apps/vins.hpp"
#include "common/error.hpp"
#include "core/solve.hpp"
#include "core/sweep.hpp"
#include "graph/compile.hpp"
#include "graph/service_graph.hpp"
#include "graph/visit_counts.hpp"
#include "interp/cubic_spline.hpp"
#include "interp/piecewise_cubic.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/request.hpp"
#include "service/workmodel.hpp"
#include "sim/closed_network_sim.hpp"
#include "workload/application.hpp"

namespace mtperf {
namespace {

using graph::BalancerPolicy;
using graph::Call;
using graph::Service;
using graph::ServiceGraph;

Service svc(std::string name, double demand, std::vector<Call> calls = {}) {
  Service s;
  s.name = std::move(name);
  s.demand = demand;
  s.calls = std::move(calls);
  return s;
}

// --- visit-count equations -------------------------------------------------

TEST(VisitCounts, LinearChainIsAllOnes) {
  ServiceGraph g({svc("web", 0.01, {{"app"}}), svc("app", 0.02, {{"db"}}),
                  svc("db", 0.03)},
                 "web", 1.0);
  const auto v = graph::solve_visit_counts(g);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(VisitCounts, BranchProbabilitiesSummingToOneConserveVisitMass) {
  // Exclusive three-way branch: p = 1/3 each (summing to 1 within eps);
  // the children's visit mass must equal the parent's exactly.
  const double third = 1.0 / 3.0;
  ServiceGraph g({svc("lb", 0.001,
                      {{"a", third}, {"b", third}, {"c", third}}),
                  svc("a", 0.01), svc("b", 0.01), svc("c", 0.01)},
                 "lb", 0.5);
  const auto v = graph::solve_visit_counts(g);
  EXPECT_NEAR(v[1] + v[2] + v[3], v[0], 1e-12);
  EXPECT_DOUBLE_EQ(v[1], third);
}

TEST(VisitCounts, AbsorbingBranchDropsMass) {
  // p sums to 0.4: 60% of requests finish at the entry without going
  // deeper — the downstream service sees only the surviving fraction.
  ServiceGraph g({svc("web", 0.01, {{"db", 0.4}}), svc("db", 0.02)}, "web",
                 1.0);
  const auto v = graph::solve_visit_counts(g);
  EXPECT_DOUBLE_EQ(v[1], 0.4);
}

TEST(VisitCounts, CallsPerVisitAmplifyAndFanInAccumulates) {
  // web -> app (2 calls) -> db (3 calls each), and web also hits db once:
  // V_db = 2*3 + 1 = 7.
  ServiceGraph g({svc("web", 0.01, {{"app", 1.0, 2.0}, {"db"}}),
                  svc("app", 0.02, {{"db", 1.0, 3.0}}), svc("db", 0.03)},
                 "web", 1.0);
  const auto v = graph::solve_visit_counts(g);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 7.0);
}

TEST(VisitCounts, CacheHitRateShieldsDownstream) {
  Service cache = svc("cache", 0.001, {{"db"}});
  cache.cache_hit_rate = 0.8;
  ServiceGraph g({svc("web", 0.01, {{"cache", 1.0, 5.0}}), cache,
                  svc("db", 0.02)},
                 "web", 1.0);
  const auto v = graph::solve_visit_counts(g);
  // The cache itself still absorbs every call; only fall-throughs go on.
  EXPECT_DOUBLE_EQ(v[1], 5.0);
  EXPECT_NEAR(v[2], 1.0, 1e-12);
}

TEST(VisitCounts, UnreachableServiceGetsZeroVisits) {
  ServiceGraph g({svc("web", 0.01), svc("orphan", 0.02)}, "web", 1.0);
  const auto v = graph::solve_visit_counts(g);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(VisitCounts, CycleIsRejectedNamingTheServices) {
  ServiceGraph g({svc("a", 0.01, {{"b"}}), svc("b", 0.01, {{"c"}}),
                  svc("c", 0.01, {{"b"}})},
                 "a", 1.0);
  try {
    graph::solve_visit_counts(g);
    FAIL() << "cycle not rejected";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("b -> c -> b"), std::string::npos) << what;
    EXPECT_NE(what.find("calls_per_visit"), std::string::npos) << what;
  }
}

TEST(ServiceGraph, ValidationRejectsStructuralErrors) {
  EXPECT_THROW(ServiceGraph({}, "x", 1.0), invalid_argument_error);
  EXPECT_THROW(ServiceGraph({svc("a", 0.1)}, "nope", 1.0),
               invalid_argument_error);
  EXPECT_THROW(ServiceGraph({svc("a", 0.1), svc("a", 0.2)}, "a", 1.0),
               invalid_argument_error);
  EXPECT_THROW(ServiceGraph({svc("a", 0.1, {{"ghost"}})}, "a", 1.0),
               invalid_argument_error);
  EXPECT_THROW(ServiceGraph({svc("a", 0.1, {{"a"}})}, "a", 1.0),
               invalid_argument_error);
  EXPECT_THROW(ServiceGraph({svc("a", 0.1, {{"b", 1.5}}), svc("b", 0.1)},
                            "a", 1.0),
               invalid_argument_error);
  EXPECT_THROW(ServiceGraph({svc("a", -0.1)}, "a", 1.0),
               invalid_argument_error);
  Service bad_cache = svc("a", 0.1);
  bad_cache.cache_hit_rate = 1.5;
  EXPECT_THROW(ServiceGraph({bad_cache}, "a", 1.0), invalid_argument_error);
}

// --- compilation -----------------------------------------------------------

TEST(Compile, LeastConnectionsPoolsReplicasIntoOneMultiserverStation) {
  Service db = svc("db", 0.02);
  db.servers = 2;
  db.replicas = 3;
  ServiceGraph g({svc("web", 0.01, {{"db"}}), db}, "web", 1.0);
  const auto compiled = graph::compile(g);
  ASSERT_EQ(compiled.network.size(), 2u);
  EXPECT_EQ(compiled.network.station(1).name, "db");
  EXPECT_EQ(compiled.network.station(1).servers, 6u);
  EXPECT_DOUBLE_EQ(compiled.network.station(1).visits, 1.0);
  EXPECT_TRUE(compiled.demands.is_constant());
}

TEST(Compile, RoundRobinSplitsReplicasIntoEqualStations) {
  Service idx = svc("index", 0.02);
  idx.replicas = 3;
  idx.balancer = BalancerPolicy::kRoundRobin;
  ServiceGraph g({svc("web", 0.01, {{"index", 1.0, 2.0}}), idx}, "web", 1.0);
  const auto compiled = graph::compile(g);
  ASSERT_EQ(compiled.network.size(), 4u);
  for (unsigned r = 0; r < 3; ++r) {
    const auto& st = compiled.network.station(1 + r);
    EXPECT_EQ(st.name, "index#" + std::to_string(r));
    EXPECT_EQ(st.servers, 1u);
    EXPECT_DOUBLE_EQ(st.visits, 2.0 / 3.0);
    EXPECT_EQ(compiled.station_service[1 + r], 1u);
    // Every replica serves the same per-visit demand.
    EXPECT_DOUBLE_EQ(compiled.demands.at(1 + r, 1.0), 0.02);
  }
}

TEST(Compile, DelayServicesStayDelayStations) {
  Service cdn = svc("cdn", 0.03);
  cdn.kind = core::StationKind::kDelay;
  ServiceGraph g({svc("web", 0.01, {{"cdn"}}), cdn}, "web", 1.0);
  const auto compiled = graph::compile(g);
  EXPECT_EQ(compiled.network.station(1).kind, core::StationKind::kDelay);
}

TEST(Compile, VisitMathMatchesHandBuiltNetworkAcrossAllSolvers) {
  // Graph: per-call demands with branching; hand-built: the same
  // stations with the solved visit counts attached.  Both must be the
  // same model to every member of the solver family.
  ServiceGraph g({svc("web", 0.004, {{"app", 1.0, 2.0}}),
                  svc("app", 0.003, {{"db", 0.6, 1.5}}), svc("db", 0.005)},
                 "web", 1.0);
  const auto compiled = graph::compile(g);
  EXPECT_DOUBLE_EQ(compiled.visit_counts[1], 2.0);
  EXPECT_DOUBLE_EQ(compiled.visit_counts[2], 1.8);

  const core::ClosedNetwork hand({{"web", 1.0, 1}, {"app", 2.0, 1},
                                  {"db", 1.8, 1}},
                                 1.0);
  const auto hand_demands = core::DemandModel::constant({0.004, 0.003, 0.005});

  const core::SolverKind kinds[] = {
      core::SolverKind::kExactSingleServer,
      core::SolverKind::kExactMultiserver,
      core::SolverKind::kSchweitzer,
      core::SolverKind::kApproxMultiserver,
      core::SolverKind::kLoadDependent,
      core::SolverKind::kMvasd,
      core::SolverKind::kMvasdSingleServer,
      core::SolverKind::kSeidmann,
      core::SolverKind::kSeidmannSchweitzer,
  };
  for (const auto kind : kinds) {
    const core::SolveOptions options{kind, 60};
    const auto a = core::solve(hand, &hand_demands, options);
    const auto b = core::solve(compiled.network, &compiled.demands, options);
    // The solved visit count 0.6 * 1.5 * 2 and the literal 1.8 differ in
    // the last ULP, so parity here is ≤1e-12, not bitwise.
    ASSERT_EQ(a.levels(), b.levels());
    for (std::size_t i = 0; i < a.levels(); ++i) {
      EXPECT_NEAR(a.throughput[i], b.throughput[i], 1e-12)
          << core::solver_kind_name(kind) << " level " << i;
      EXPECT_NEAR(a.response_time[i], b.response_time[i], 1e-12)
          << core::solver_kind_name(kind) << " level " << i;
    }
  }
}

// --- parity fixtures: graph-compiled VINS / JPetStore ----------------------

/// Spline per station through the app's ground-truth demands, shared by the
/// hand-built and graph-compiled models so any result difference would come
/// from the compilation itself, not spline construction.
struct AppFixture {
  core::ClosedNetwork hand{{core::Station{}}, 0.0};
  core::DemandModel hand_demands = core::DemandModel::constant({0.0});
  graph::CompiledNetwork compiled;

  explicit AppFixture(const workload::ApplicationModel& app,
                      const std::vector<double>& levels) {
    std::vector<std::shared_ptr<const interp::Interpolator1D>> splines;
    std::vector<core::Station> stations;
    std::vector<Service> services;
    const auto& sim_stations = app.stations();
    for (std::size_t k = 0; k < sim_stations.size(); ++k) {
      std::vector<double> ys;
      for (const double n : levels) ys.push_back(app.true_demand(k, n));
      splines.push_back(std::make_shared<interp::PiecewiseCubic>(
          interp::build_cubic_spline(interp::SampleSet(levels, ys))));
      stations.push_back(
          {sim_stations[k].name, 1.0, sim_stations[k].servers,
           core::StationKind::kQueueing});
      Service s;
      s.name = sim_stations[k].name;
      s.demand_curve = splines.back();
      s.servers = sim_stations[k].servers;
      // Linear call chain: every visit count stays 1, matching the
      // hand-built all-visits-1 network.
      if (k + 1 < sim_stations.size()) s.calls = {{sim_stations[k + 1].name}};
      services.push_back(std::move(s));
    }
    hand = core::ClosedNetwork(std::move(stations), app.think_time());
    hand_demands = core::DemandModel::interpolated(std::move(splines));
    compiled = graph::compile(
        ServiceGraph(std::move(services), sim_stations.front().name,
                     app.think_time()));
  }
};

void expect_solver_parity(const AppFixture& fix, unsigned max_population) {
  for (const double v : fix.compiled.visit_counts) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_EQ(fix.compiled.network.think_time(), fix.hand.think_time());
  const core::SolverKind kinds[] = {
      core::SolverKind::kMvasd,
      core::SolverKind::kMvasdSingleServer,
      core::SolverKind::kExactMultiserver,
      core::SolverKind::kApproxMultiserver,
  };
  for (const auto kind : kinds) {
    const core::SolveOptions options{kind, max_population};
    const auto a = core::solve(fix.hand, &fix.hand_demands, options);
    const auto b =
        core::solve(fix.compiled.network, &fix.compiled.demands, options);
    // Same stations, visits, and shared splines: the recursions must run
    // the same arithmetic, so parity is exact (well under the 1e-12 bound).
    EXPECT_EQ(a.throughput, b.throughput) << core::solver_kind_name(kind);
    EXPECT_EQ(a.response_time, b.response_time)
        << core::solver_kind_name(kind);
    EXPECT_EQ(a.cycle_time, b.cycle_time) << core::solver_kind_name(kind);
  }
}

TEST(GraphParity, VinsGraphReproducesHandBuiltNetwork) {
  const AppFixture fix(apps::make_vins(),
                       {1, 50, 150, 300, 500, 800, 1100, 1500});
  expect_solver_parity(fix, 400);
}

TEST(GraphParity, JPetStoreGraphReproducesHandBuiltNetwork) {
  const AppFixture fix(apps::make_jpetstore(), {1, 25, 75, 150, 300, 500});
  expect_solver_parity(fix, 300);
}

/// Two-tier FES decomposition of an application frozen at a fixed
/// concurrency (constant demands keep the network product-form, where
/// Norton aggregation is exact): front half vs back half of the pipeline.
void expect_two_tier_fes_parity(const workload::ApplicationModel& app,
                                double frozen_at, unsigned max_population) {
  std::vector<core::Station> stations;
  const auto& sim_stations = app.stations();
  for (const auto& st : sim_stations) {
    stations.push_back({st.name, 1.0, st.servers, core::StationKind::kQueueing});
  }
  const core::ClosedNetwork network(std::move(stations), app.think_time());
  const auto demands =
      core::DemandModel::constant(app.true_demands(frozen_at));

  const std::size_t half = sim_stations.size() / 2;
  core::TierSpec front{"front", {}}, back{"back", {}};
  for (std::size_t k = 0; k < sim_stations.size(); ++k) {
    (k < half ? front : back).stations.push_back(k);
  }

  const core::SolveOptions flat{core::SolverKind::kExactMultiserver,
                                max_population};
  core::SolveOptions hier{core::SolverKind::kHierarchical, max_population};
  hier.hierarchy.tiers = {front, back};

  const auto exact = core::solve(network, &demands, flat);
  const auto fes = core::solve(network, &demands, hier);
  ASSERT_EQ(fes.station_names, exact.station_names);
  for (std::size_t i = 0; i < exact.levels(); ++i) {
    EXPECT_NEAR(fes.throughput[i], exact.throughput[i],
                1e-9 * exact.throughput[i]);
    EXPECT_NEAR(fes.response_time[i], exact.response_time[i],
                1e-9 * exact.response_time[i]);
  }
  const std::size_t top = exact.levels() - 1;
  for (std::size_t k = 0; k < exact.stations(); ++k) {
    EXPECT_NEAR(fes.utilization(top, k), exact.utilization(top, k), 1e-9)
        << exact.station_names[k];
  }
}

TEST(GraphParity, VinsTwoTierFesMatchesFlatExact) {
  expect_two_tier_fes_parity(apps::make_vins(), 300.0, 200);
}

TEST(GraphParity, JPetStoreTwoTierFesMatchesFlatExact) {
  // At JPetStore's frozen-demand operating point the two FES subnetworks
  // saturate hard well before n = 200, and the extracted profiles inherit
  // the multiserver engine's saturated-regime accuracy (~1e-3 wiggle in
  // X_sub past the subnetwork knee).  Exact parity therefore holds up to
  // the onset of that regime (measured: 1e-9 through n = 93); deeper
  // populations are covered by the bounded-saturation band below.
  expect_two_tier_fes_parity(apps::make_jpetstore(), 140.0, 80);
}

TEST(GraphParity, JPetStoreTwoTierFesStaysBoundedPastSaturation) {
  const auto app = apps::make_jpetstore();
  std::vector<core::Station> stations;
  for (const auto& st : app.stations()) {
    stations.push_back({st.name, 1.0, st.servers, core::StationKind::kQueueing});
  }
  const core::ClosedNetwork network(std::move(stations), app.think_time());
  const std::vector<double> d = app.true_demands(140.0);
  const auto demands = core::DemandModel::constant(d);
  const std::size_t half = network.size() / 2;
  core::TierSpec front{"front", {}}, back{"back", {}};
  for (std::size_t k = 0; k < network.size(); ++k) {
    (k < half ? front : back).stations.push_back(k);
  }
  const core::SolveOptions flat{core::SolverKind::kExactMultiserver, 200};
  core::SolveOptions hier{core::SolverKind::kHierarchical, 200};
  hier.hierarchy.tiers = {front, back};
  const auto exact = core::solve(network, &demands, flat);
  const auto fes = core::solve(network, &demands, hier);

  // The asymptote-anchored recursion keeps the deep-saturation error
  // bounded: throughput may never exceed the network's capacity bound
  // min_k C_k / D_k, and it tracks the flat solver through the knee to a
  // few percent even though the profile inputs are only ~1e-3 accurate
  // there (measured worst: 2.8% on X, 9.6% on R at the knee).
  double bound = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < network.size(); ++k) {
    bound = std::min(bound, network.station(k).servers / d[k]);
  }
  for (std::size_t i = 0; i < exact.levels(); ++i) {
    EXPECT_LE(fes.throughput[i], bound * (1.0 + 1e-9)) << "level " << i;
    EXPECT_NEAR(fes.throughput[i], exact.throughput[i],
                0.05 * exact.throughput[i])
        << "level " << i;
    EXPECT_NEAR(fes.response_time[i], exact.response_time[i],
                0.15 * exact.response_time[i])
        << "level " << i;
  }
}

TEST(GraphParity, SolveBatchTreatsCompiledSpecsAsLaneCompatible) {
  const AppFixture fix(apps::make_vins(), {1, 100, 400, 900, 1500});
  const core::SolveOptions options{core::SolverKind::kMvasd, 200};
  std::vector<core::ScenarioSpec> specs;
  specs.push_back({"hand", fix.hand, fix.hand_demands, options});
  specs.push_back(
      {"graph", fix.compiled.network, fix.compiled.demands, options});
  const auto results = core::solve_batch(specs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].throughput, results[1].throughput);
  EXPECT_EQ(results[0].response_time, results[1].response_time);
}

// --- the example mesh ------------------------------------------------------

/// The ten-plus-service mesh of the README quickstart, programmatically:
/// replicated tiers behind both balancer policies, a cache tier, a delay
/// hop, and branchy fan-out.  Demands constant so the simulator's
/// steady state is directly comparable to the analytic solution.
ServiceGraph example_mesh() {
  std::vector<Service> services;
  services.push_back(svc("gateway", 0.002,
                         {{"auth"},
                          {"catalog", 0.65},
                          {"orders", 0.3},
                          {"cdn", 1.0, 2.0}}));
  services.push_back(svc("auth", 0.001, {{"redis"}}));
  services.push_back(svc("catalog", 0.003, {{"search", 0.5},
                                            {"redis", 1.0, 2.0}}));
  Service search = svc("search", 0.004, {{"index", 1.0, 2.0}});
  search.servers = 2;
  services.push_back(search);
  Service index = svc("index", 0.006);
  index.replicas = 2;
  index.balancer = BalancerPolicy::kRoundRobin;
  services.push_back(index);
  Service redis = svc("redis", 0.0005, {{"db"}});
  redis.cache_hit_rate = 0.8;
  services.push_back(redis);
  Service db = svc("db", 0.008);
  db.servers = 2;
  db.replicas = 3;
  services.push_back(db);
  services.push_back(svc("orders", 0.005, {{"db", 1.0, 2.0},
                                           {"payment", 0.8}}));
  services.push_back(svc("payment", 0.01, {{"notify"}}));
  services.push_back(svc("notify", 0.002));
  Service cdn = svc("cdn", 0.02);
  cdn.kind = core::StationKind::kDelay;
  services.push_back(cdn);
  return ServiceGraph(std::move(services), "gateway", 1.0);
}

TEST(ExampleMesh, VisitCountsSolveTheTrafficEquations) {
  const ServiceGraph mesh = example_mesh();
  const auto v = graph::solve_visit_counts(mesh);
  EXPECT_DOUBLE_EQ(v[mesh.index_of("auth")], 1.0);
  EXPECT_DOUBLE_EQ(v[mesh.index_of("catalog")], 0.65);
  EXPECT_DOUBLE_EQ(v[mesh.index_of("search")], 0.325);
  EXPECT_DOUBLE_EQ(v[mesh.index_of("index")], 0.65);
  // redis fans in from auth (1) and catalog (0.65 * 2).
  EXPECT_NEAR(v[mesh.index_of("redis")], 2.3, 1e-12);
  // db sees the cache fall-through (2.3 * 0.2) plus orders (0.3 * 2).
  EXPECT_NEAR(v[mesh.index_of("db")], 1.06, 1e-12);
  EXPECT_NEAR(v[mesh.index_of("payment")], 0.24, 1e-12);
  EXPECT_DOUBLE_EQ(v[mesh.index_of("cdn")], 2.0);
}

TEST(ExampleMesh, SolvesThroughSolveBatchAndEngine) {
  const ServiceGraph mesh = example_mesh();
  const core::SolveOptions options{core::SolverKind::kExactMultiserver, 50};
  const core::ScenarioSpec spec = graph::to_scenario(mesh, "mesh", options);
  ASSERT_EQ(spec.network.size(), 12u);  // 11 services, index split in two
  const auto direct = core::solve(spec.network, &spec.demands, spec.options);

  service::Engine engine;
  const auto batch = engine.evaluate_batch({spec, spec});
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& evaluation : batch) {
    EXPECT_EQ(evaluation.result->throughput, direct.throughput);
    EXPECT_EQ(evaluation.result->response_time, direct.response_time);
  }
  EXPECT_GT(direct.throughput.back(), 0.0);
}

TEST(ExampleMesh, SimulatorAgreesWithAnalyticSolution) {
  const ServiceGraph mesh = example_mesh();
  constexpr unsigned kUsers = 30;
  const core::SolveOptions options{core::SolverKind::kExactMultiserver,
                                   kUsers};
  const auto compiled = graph::compile(mesh);
  const auto analytic =
      core::solve(compiled.network, &compiled.demands, options);

  const auto lowered = graph::compile_sim(mesh, kUsers);
  sim::SimOptions sim_options;
  sim_options.customers = kUsers;
  sim_options.think_time_mean = mesh.think_time();
  sim_options.warmup_time = 50.0;
  sim_options.measure_time = 600.0;
  sim_options.seed = 7;
  const auto sim = sim::simulate_closed_network(lowered.stations,
                                                lowered.workflow, sim_options);

  const double x_mva = analytic.throughput.back();
  EXPECT_NEAR(sim.throughput, x_mva, 0.05 * x_mva);
  EXPECT_NEAR(sim.response_time, analytic.response_time.back(),
              0.10 * analytic.cycle_time.back());
  // Per-station utilization: compare where the analytic model predicts
  // meaningful load (delay stations report utilization differently).
  const auto util_of = [&](const std::string& name) {
    for (const auto& st : sim.stations) {
      if (st.name == name) return st.utilization;
    }
    ADD_FAILURE() << "station " << name << " missing from sim";
    return 0.0;
  };
  const std::size_t top = analytic.levels() - 1;
  for (std::size_t k = 0; k < compiled.network.size(); ++k) {
    const auto& st = compiled.network.station(k);
    if (st.kind == core::StationKind::kDelay) continue;
    EXPECT_NEAR(util_of(st.name), analytic.utilization(top, k), 0.05)
        << st.name;
  }
}

// --- the JSON workmodel loader ---------------------------------------------

const char* kMeshJson = R"({
  "cmd": "workmodel", "label": "mesh", "entry": "gateway", "think": 1.0,
  "services": {
    "gateway": {"demand": 0.002, "calls": [
      {"to": "auth"}, {"to": "catalog", "p": 0.65},
      {"to": "orders", "p": 0.3}, {"to": "cdn", "calls": 2}]},
    "auth": {"demand": 0.001, "calls": [{"to": "redis"}]},
    "catalog": {"demand": 0.003, "calls": [
      {"to": "search", "p": 0.5}, {"to": "redis", "calls": 2}]},
    "search": {"demand": 0.004, "servers": 2,
               "calls": [{"to": "index", "calls": 2}]},
    "index": {"demand": 0.006, "replicas": 2, "balancer": "round-robin"},
    "redis": {"demand": 0.0005, "cache_hit_rate": 0.8,
              "calls": [{"to": "db"}]},
    "db": {"demand": 0.008, "servers": 2, "replicas": 3},
    "orders": {"demand": 0.005, "calls": [
      {"to": "db", "calls": 2}, {"to": "payment", "p": 0.8}]},
    "payment": {"demand": 0.01, "calls": [{"to": "notify"}]},
    "notify": {"demand": 0.002},
    "cdn": {"demand": 0.02, "kind": "delay"}
  },
  "solver": "exact-multiserver", "max_population": 50})";

TEST(Workmodel, JsonMeshMatchesProgrammaticGraph) {
  const auto request = service::Json::parse(kMeshJson);
  const core::ScenarioSpec from_json = service::workmodel_scenario(request);
  EXPECT_EQ(from_json.label, "mesh");

  const core::SolveOptions options{core::SolverKind::kExactMultiserver, 50};
  const core::ScenarioSpec programmatic =
      graph::to_scenario(example_mesh(), "mesh", options);

  // JSON objects iterate alphabetically, so station order differs from the
  // programmatic declaration order — compare by station name instead.
  const auto a =
      core::solve(from_json.network, &from_json.demands, from_json.options);
  const auto b = core::solve(programmatic.network, &programmatic.demands,
                             programmatic.options);
  EXPECT_NEAR(a.throughput.back(), b.throughput.back(), 1e-12);
  EXPECT_NEAR(a.response_time.back(), b.response_time.back(), 1e-12);
  const std::size_t top = a.levels() - 1;
  for (std::size_t k = 0; k < a.stations(); ++k) {
    const std::size_t j = from_json.network.index_of(a.station_names[k]);
    const std::size_t m = programmatic.network.index_of(a.station_names[k]);
    EXPECT_NEAR(a.utilization(top, j), b.utilization(top, m), 1e-12)
        << a.station_names[k];
  }
}

TEST(Workmodel, SplineDemandsAndDefaultsParse) {
  const auto request = service::Json::parse(R"({
    "cmd": "workmodel", "entry": "web", "think": 0.5,
    "services": {
      "web": {"demand": 0.01, "calls": [{"to": "db"}]},
      "db": {"demand": {"x": [1, 100, 300], "y": [0.02, 0.015, 0.012]}}
    },
    "solver": "mvasd", "max_population": 100})");
  const core::ScenarioSpec spec = service::workmodel_scenario(request);
  EXPECT_FALSE(spec.demands.is_constant());
  const auto result = core::solve(spec.network, &spec.demands, spec.options);
  EXPECT_GT(result.throughput.back(), 0.0);
  // The spline's single-user demand is the measured 0.02 s.
  const std::size_t db = spec.network.index_of("db");
  EXPECT_NEAR(spec.demands.at(db, 1.0), 0.02, 1e-12);
}

TEST(Workmodel, ErrorsAreReadable) {
  const auto parse = [](const char* text) {
    return service::workmodel_scenario(service::Json::parse(text));
  };
  // Cycle through the JSON path surfaces the visit-count error.
  EXPECT_THROW(parse(R"({"cmd":"workmodel","entry":"a","services":{
      "a":{"demand":0.1,"calls":[{"to":"b"}]},
      "b":{"demand":0.1,"calls":[{"to":"a"}]}},
      "max_population":10})"),
               invalid_argument_error);
  EXPECT_THROW(parse(R"({"cmd":"workmodel","entry":"ghost","services":{
      "a":{"demand":0.1}},"max_population":10})"),
               invalid_argument_error);
  EXPECT_THROW(parse(R"({"cmd":"workmodel","entry":"a","services":{
      "a":{"demand":0.1,"balancer":"random"}},"max_population":10})"),
               invalid_argument_error);
  EXPECT_THROW(parse(R"({"cmd":"workmodel","entry":"a","services":{
      "a":{"demand":0.1}}})"),
               invalid_argument_error);  // missing max_population
}

TEST(Workmodel, ParseRequestRoutesWorkmodelCommand) {
  const service::ParsedRequest parsed = service::parse_request(kMeshJson);
  EXPECT_EQ(parsed.kind, service::RequestKind::kScenario);
  EXPECT_EQ(parsed.spec.label, "mesh");
  EXPECT_EQ(parsed.spec.network.size(), 12u);
}

}  // namespace
}  // namespace mtperf
