// Tests for multi-class MVA (exact and Schweitzer).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/mva_exact.hpp"
#include "core/mva_multiclass.hpp"
#include "core/mva_multiserver.hpp"
#include "core/seidmann.hpp"
#include "core/network.hpp"

namespace mtperf::core {
namespace {

ClosedNetwork two_station_net(double think = 0.0) {
  return make_network({"cpu", "disk"}, {1, 1}, think);
}

TEST(Multiclass, SingleClassMatchesExactMva) {
  const auto net = two_station_net(1.0);
  const std::vector<double> demands{0.05, 0.12};
  const std::vector<CustomerClass> classes{{"only", 15, 1.0, demands}};
  const auto mc = exact_mva_multiclass(net, classes);
  const auto sc = exact_mva(net, demands, 15);
  EXPECT_NEAR(mc.class_throughput[0], sc.throughput.back(), 1e-10);
  EXPECT_NEAR(mc.class_response_time[0], sc.response_time.back(), 1e-10);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(mc.station_queue[k], sc.queue(sc.levels() - 1, k), 1e-10);
  }
}

TEST(Multiclass, TwoIdenticalClassesEqualOneMergedClass) {
  const auto net = two_station_net(2.0);
  const std::vector<double> demands{0.03, 0.08};
  const std::vector<CustomerClass> split{{"a", 6, 2.0, demands},
                                         {"b", 9, 2.0, demands}};
  const auto mc = exact_mva_multiclass(net, split);
  const auto merged = exact_mva(net, demands, 15);
  EXPECT_NEAR(mc.total_throughput(), merged.throughput.back(), 1e-9);
  // Throughput shares proportional to populations (identical classes).
  EXPECT_NEAR(mc.class_throughput[0] / mc.class_throughput[1], 6.0 / 9.0,
              1e-9);
}

TEST(Multiclass, LittlesLawPerClass) {
  const auto net = two_station_net(1.5);
  const std::vector<CustomerClass> classes{
      {"renew", 8, 1.5, {0.05, 0.15}},
      {"read", 12, 1.5, {0.02, 0.01}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    EXPECT_NEAR(r.class_throughput[c] *
                    (r.class_response_time[c] + classes[c].think_time),
                static_cast<double>(classes[c].population), 1e-9);
  }
}

TEST(Multiclass, CustomersConserved) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 5, 1.0, {0.05, 0.15}},
      {"b", 7, 1.0, {0.02, 0.01}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  double total = 0.0;
  for (std::size_t k = 0; k < 2; ++k) total += r.station_queue[k];
  for (std::size_t c = 0; c < 2; ++c) {
    total += r.class_throughput[c] * classes[c].think_time;
  }
  EXPECT_NEAR(total, 12.0, 1e-9);
}

TEST(Multiclass, UtilizationsSumClassContributions) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 5, 1.0, {0.05, 0.15}},
      {"b", 7, 1.0, {0.02, 0.01}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  for (std::size_t k = 0; k < 2; ++k) {
    const double expected = r.class_throughput[0] * classes[0].demands[k] +
                            r.class_throughput[1] * classes[1].demands[k];
    EXPECT_NEAR(r.station_utilization[k], expected, 1e-12);
    EXPECT_LE(r.station_utilization[k], 1.0 + 1e-9);
  }
}

TEST(Multiclass, ZeroPopulationClassContributesNothing) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"active", 10, 1.0, {0.05, 0.15}},
      {"idle", 0, 1.0, {0.5, 0.5}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  EXPECT_DOUBLE_EQ(r.class_throughput[1], 0.0);
  const auto single = exact_mva(net, std::vector<double>{0.05, 0.15}, 10);
  EXPECT_NEAR(r.class_throughput[0], single.throughput.back(), 1e-10);
}

TEST(Multiclass, DelayStationsSupported) {
  const ClosedNetwork net(
      {Station{"q", 1.0, 1, StationKind::kQueueing},
       Station{"lan", 1.0, 1, StationKind::kDelay}},
      1.0);
  const std::vector<CustomerClass> classes{{"a", 10, 1.0, {0.05, 0.2}}};
  const auto r = exact_mva_multiclass(net, classes);
  EXPECT_GT(r.class_throughput[0], 0.0);
  // Delay residence is exactly the demand, independent of load.
  EXPECT_GE(r.class_response_time[0], 0.2);
}

TEST(Multiclass, SchweitzerCloseToExact) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 10, 1.0, {0.05, 0.15}},
      {"b", 20, 1.0, {0.02, 0.01}},
  };
  const auto exact = exact_mva_multiclass(net, classes);
  const auto approx = schweitzer_mva_multiclass(net, classes);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    // Schweitzer's proportional estimate carries a few percent of error at
    // small per-class populations; 10% is the usual engineering envelope.
    EXPECT_NEAR(approx.class_throughput[c], exact.class_throughput[c],
                0.10 * exact.class_throughput[c])
        << "class " << c;
  }
}

TEST(Multiclass, SchweitzerLittlesLawHolds) {
  const auto net = two_station_net(0.5);
  const std::vector<CustomerClass> classes{
      {"a", 40, 0.5, {0.02, 0.05}},
      {"b", 60, 0.5, {0.01, 0.002}},
  };
  const auto r = schweitzer_mva_multiclass(net, classes);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    EXPECT_NEAR(r.class_throughput[c] *
                    (r.class_response_time[c] + classes[c].think_time),
                static_cast<double>(classes[c].population), 1e-6);
  }
}

TEST(Multiclass, SchweitzerHandlesLargeMixesExactCannot) {
  // 3 classes x 200 users each: the exact state space would be 201^3.
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 200, 1.0, {0.004, 0.002}},
      {"b", 200, 1.0, {0.001, 0.006}},
      {"c", 200, 1.0, {0.002, 0.002}},
  };
  const auto r = schweitzer_mva_multiclass(net, classes);
  EXPECT_GT(r.total_throughput(), 0.0);
  for (double u : r.station_utilization) EXPECT_LE(u, 1.0 + 1e-9);
}


TEST(Multiclass, SeidmannTransformEnablesMultiServerMulticlass) {
  // The workflow examples/multiclass_workload_mix uses: fold multi-core
  // CPUs via the Seidmann transform, then run multi-class MVA.  With a
  // single class the result must approximate the exact multi-server
  // solution of the original network.
  const ClosedNetwork net(
      {Station{"cpu", 1.0, 8, StationKind::kQueueing},
       Station{"disk", 1.0, 1, StationKind::kQueueing}},
      1.0);
  const std::vector<double> demands{0.08, 0.012};
  const auto t = seidmann_transform(net, demands);
  const std::vector<CustomerClass> classes{
      {"only", 60, 1.0, t.service_times}};
  const auto mc = exact_mva_multiclass(t.network, classes);
  const auto exact = exact_multiserver_mva(net, demands, 60);
  const double e = exact.throughput.back();
  EXPECT_NEAR(mc.class_throughput[0], e, 0.15 * e);  // Seidmann approximation
}

TEST(Multiclass, RejectsMultiServerStations) {
  const auto net = make_network({"cpu"}, {4}, 1.0);
  const std::vector<CustomerClass> classes{{"a", 5, 1.0, {0.1}}};
  EXPECT_THROW(exact_mva_multiclass(net, classes), invalid_argument_error);
}

TEST(Multiclass, Validation) {
  const auto net = two_station_net(1.0);
  EXPECT_THROW(exact_mva_multiclass(net, {}), invalid_argument_error);
  EXPECT_THROW(exact_mva_multiclass(net, {{"a", 5, 1.0, {0.1}}}),
               invalid_argument_error);  // demand width
  EXPECT_THROW(exact_mva_multiclass(net, {{"a", 5, -1.0, {0.1, 0.1}}}),
               invalid_argument_error);
  EXPECT_THROW(exact_mva_multiclass(net, {{"a", 0, 1.0, {0.1, 0.1}}}),
               invalid_argument_error);  // all-zero population
}

TEST(Multiclass, ExactRejectsHugeStateSpace) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 4000, 1.0, {0.001, 0.001}},
      {"b", 4000, 1.0, {0.001, 0.001}},
      {"c", 4000, 1.0, {0.001, 0.001}},
  };
  EXPECT_THROW(exact_mva_multiclass(net, classes), invalid_argument_error);
}

TEST(Multiclass, StateSpaceOverflowIsRejectedNotWrapped) {
  // Regression: the mixed-radix stride product used to be computed with
  // unchecked std::size_t multiplies, so populations whose product wraps
  // 2^64 could sneak a tiny bogus total past the size guard and index the
  // Q table out of bounds.  Every one of these must throw the same
  // too-large error instead.
  const auto net = two_station_net(1.0);
  const unsigned huge = 4'000'000'000u;
  const std::vector<std::vector<CustomerClass>> hostile{
      // Product of radices overflows 64 bits outright.
      {{"a", huge, 1.0, {0.001, 0.001}},
       {"b", huge, 1.0, {0.001, 0.001}},
       {"c", huge, 1.0, {0.001, 0.001}}},
      // Two classes: product is ~2^63.8 — wraps to a small residue.
      {{"a", huge, 1.0, {0.001, 0.001}},
       {"b", huge, 1.0, {0.001, 0.001}}},
      // One huge class mixed with a normal one.
      {{"a", huge, 1.0, {0.001, 0.001}}, {"b", 10, 1.0, {0.001, 0.001}}},
  };
  for (const auto& classes : hostile) {
    try {
      exact_mva_multiclass(net, classes);
      FAIL() << "overflowing population-vector space accepted";
    } catch (const invalid_argument_error& e) {
      EXPECT_NE(std::string(e.what()).find("too large"), std::string::npos);
    }
  }
}

TEST(Multiclass, DemandDimensionMismatchNamesTheClass) {
  // Pin the validation message: a class whose demand vector does not match
  // the station count must be rejected by name before any solving starts.
  const auto net = two_station_net(1.0);
  try {
    exact_mva_multiclass(net, {{"renew", 5, 1.0, {0.1, 0.2, 0.3}}});
    FAIL() << "mismatched demand width accepted";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("renew"), std::string::npos) << what;
    EXPECT_NE(what.find("one demand per station"), std::string::npos) << what;
  }
  EXPECT_THROW(
      schweitzer_mva_multiclass(net, {{"renew", 5, 1.0, {0.1}}}),
      invalid_argument_error);
}

}  // namespace
}  // namespace mtperf::core
