// Tests for multi-class MVA (exact, Method of Moments, and Schweitzer).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/mva_exact.hpp"
#include "core/mva_multiclass.hpp"
#include "core/mva_multiserver.hpp"
#include "core/seidmann.hpp"
#include "core/network.hpp"
#include "core/solve.hpp"
#include "interp/cubic_spline.hpp"

namespace mtperf::core {
namespace {

ClosedNetwork two_station_net(double think = 0.0) {
  return make_network({"cpu", "disk"}, {1, 1}, think);
}

TEST(Multiclass, SingleClassMatchesExactMva) {
  const auto net = two_station_net(1.0);
  const std::vector<double> demands{0.05, 0.12};
  const std::vector<CustomerClass> classes{{"only", 15, 1.0, demands}};
  const auto mc = exact_mva_multiclass(net, classes);
  const auto sc = exact_mva(net, demands, 15);
  EXPECT_NEAR(mc.class_throughput[0], sc.throughput.back(), 1e-10);
  EXPECT_NEAR(mc.class_response_time[0], sc.response_time.back(), 1e-10);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(mc.station_queue[k], sc.queue(sc.levels() - 1, k), 1e-10);
  }
}

TEST(Multiclass, TwoIdenticalClassesEqualOneMergedClass) {
  const auto net = two_station_net(2.0);
  const std::vector<double> demands{0.03, 0.08};
  const std::vector<CustomerClass> split{{"a", 6, 2.0, demands},
                                         {"b", 9, 2.0, demands}};
  const auto mc = exact_mva_multiclass(net, split);
  const auto merged = exact_mva(net, demands, 15);
  EXPECT_NEAR(mc.total_throughput(), merged.throughput.back(), 1e-9);
  // Throughput shares proportional to populations (identical classes).
  EXPECT_NEAR(mc.class_throughput[0] / mc.class_throughput[1], 6.0 / 9.0,
              1e-9);
}

TEST(Multiclass, LittlesLawPerClass) {
  const auto net = two_station_net(1.5);
  const std::vector<CustomerClass> classes{
      {"renew", 8, 1.5, {0.05, 0.15}},
      {"read", 12, 1.5, {0.02, 0.01}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    EXPECT_NEAR(r.class_throughput[c] *
                    (r.class_response_time[c] + classes[c].think_time),
                static_cast<double>(classes[c].population), 1e-9);
  }
}

TEST(Multiclass, CustomersConserved) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 5, 1.0, {0.05, 0.15}},
      {"b", 7, 1.0, {0.02, 0.01}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  double total = 0.0;
  for (std::size_t k = 0; k < 2; ++k) total += r.station_queue[k];
  for (std::size_t c = 0; c < 2; ++c) {
    total += r.class_throughput[c] * classes[c].think_time;
  }
  EXPECT_NEAR(total, 12.0, 1e-9);
}

TEST(Multiclass, UtilizationsSumClassContributions) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 5, 1.0, {0.05, 0.15}},
      {"b", 7, 1.0, {0.02, 0.01}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  for (std::size_t k = 0; k < 2; ++k) {
    const double expected = r.class_throughput[0] * classes[0].demands[k] +
                            r.class_throughput[1] * classes[1].demands[k];
    EXPECT_NEAR(r.station_utilization[k], expected, 1e-12);
    EXPECT_LE(r.station_utilization[k], 1.0 + 1e-9);
  }
}

TEST(Multiclass, ZeroPopulationClassContributesNothing) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"active", 10, 1.0, {0.05, 0.15}},
      {"idle", 0, 1.0, {0.5, 0.5}},
  };
  const auto r = exact_mva_multiclass(net, classes);
  EXPECT_DOUBLE_EQ(r.class_throughput[1], 0.0);
  const auto single = exact_mva(net, std::vector<double>{0.05, 0.15}, 10);
  EXPECT_NEAR(r.class_throughput[0], single.throughput.back(), 1e-10);
}

TEST(Multiclass, DelayStationsSupported) {
  const ClosedNetwork net(
      {Station{"q", 1.0, 1, StationKind::kQueueing},
       Station{"lan", 1.0, 1, StationKind::kDelay}},
      1.0);
  const std::vector<CustomerClass> classes{{"a", 10, 1.0, {0.05, 0.2}}};
  const auto r = exact_mva_multiclass(net, classes);
  EXPECT_GT(r.class_throughput[0], 0.0);
  // Delay residence is exactly the demand, independent of load.
  EXPECT_GE(r.class_response_time[0], 0.2);
}

TEST(Multiclass, SchweitzerCloseToExact) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 10, 1.0, {0.05, 0.15}},
      {"b", 20, 1.0, {0.02, 0.01}},
  };
  const auto exact = exact_mva_multiclass(net, classes);
  const auto approx = schweitzer_mva_multiclass(net, classes);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    // Schweitzer's proportional estimate carries a few percent of error at
    // small per-class populations; 10% is the usual engineering envelope.
    EXPECT_NEAR(approx.class_throughput[c], exact.class_throughput[c],
                0.10 * exact.class_throughput[c])
        << "class " << c;
  }
}

TEST(Multiclass, SchweitzerLittlesLawHolds) {
  const auto net = two_station_net(0.5);
  const std::vector<CustomerClass> classes{
      {"a", 40, 0.5, {0.02, 0.05}},
      {"b", 60, 0.5, {0.01, 0.002}},
  };
  const auto r = schweitzer_mva_multiclass(net, classes);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    EXPECT_NEAR(r.class_throughput[c] *
                    (r.class_response_time[c] + classes[c].think_time),
                static_cast<double>(classes[c].population), 1e-6);
  }
}

TEST(Multiclass, SchweitzerHandlesLargeMixesExactCannot) {
  // 3 classes x 200 users each: the exact state space would be 201^3.
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 200, 1.0, {0.004, 0.002}},
      {"b", 200, 1.0, {0.001, 0.006}},
      {"c", 200, 1.0, {0.002, 0.002}},
  };
  const auto r = schweitzer_mva_multiclass(net, classes);
  EXPECT_GT(r.total_throughput(), 0.0);
  for (double u : r.station_utilization) EXPECT_LE(u, 1.0 + 1e-9);
}


TEST(Multiclass, SeidmannTransformEnablesMultiServerMulticlass) {
  // The workflow examples/multiclass_workload_mix uses: fold multi-core
  // CPUs via the Seidmann transform, then run multi-class MVA.  With a
  // single class the result must approximate the exact multi-server
  // solution of the original network.
  const ClosedNetwork net(
      {Station{"cpu", 1.0, 8, StationKind::kQueueing},
       Station{"disk", 1.0, 1, StationKind::kQueueing}},
      1.0);
  const std::vector<double> demands{0.08, 0.012};
  const auto t = seidmann_transform(net, demands);
  const std::vector<CustomerClass> classes{
      {"only", 60, 1.0, t.service_times}};
  const auto mc = exact_mva_multiclass(t.network, classes);
  const auto exact = exact_multiserver_mva(net, demands, 60);
  const double e = exact.throughput.back();
  EXPECT_NEAR(mc.class_throughput[0], e, 0.15 * e);  // Seidmann approximation
}

TEST(Multiclass, RejectsMultiServerStations) {
  const auto net = make_network({"cpu"}, {4}, 1.0);
  const std::vector<CustomerClass> classes{{"a", 5, 1.0, {0.1}}};
  EXPECT_THROW(exact_mva_multiclass(net, classes), invalid_argument_error);
}

TEST(Multiclass, Validation) {
  const auto net = two_station_net(1.0);
  EXPECT_THROW(exact_mva_multiclass(net, {}), invalid_argument_error);
  EXPECT_THROW(exact_mva_multiclass(net, {{"a", 5, 1.0, {0.1}}}),
               invalid_argument_error);  // demand width
  EXPECT_THROW(exact_mva_multiclass(net, {{"a", 5, -1.0, {0.1, 0.1}}}),
               invalid_argument_error);
  EXPECT_THROW(exact_mva_multiclass(net, {{"a", 0, 1.0, {0.1, 0.1}}}),
               invalid_argument_error);  // all-zero population
}

TEST(Multiclass, ExactRejectsHugeStateSpace) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 4000, 1.0, {0.001, 0.001}},
      {"b", 4000, 1.0, {0.001, 0.001}},
      {"c", 4000, 1.0, {0.001, 0.001}},
  };
  EXPECT_THROW(exact_mva_multiclass(net, classes), invalid_argument_error);
}

TEST(Multiclass, StateSpaceOverflowIsRejectedNotWrapped) {
  // Regression: the mixed-radix stride product used to be computed with
  // unchecked std::size_t multiplies, so populations whose product wraps
  // 2^64 could sneak a tiny bogus total past the size guard and index the
  // Q table out of bounds.  Every one of these must throw the same
  // too-large error instead.
  const auto net = two_station_net(1.0);
  const unsigned huge = 4'000'000'000u;
  const std::vector<std::vector<CustomerClass>> hostile{
      // Product of radices overflows 64 bits outright.
      {{"a", huge, 1.0, {0.001, 0.001}},
       {"b", huge, 1.0, {0.001, 0.001}},
       {"c", huge, 1.0, {0.001, 0.001}}},
      // Two classes: product is ~2^63.8 — wraps to a small residue.
      {{"a", huge, 1.0, {0.001, 0.001}},
       {"b", huge, 1.0, {0.001, 0.001}}},
      // One huge class mixed with a normal one.
      {{"a", huge, 1.0, {0.001, 0.001}}, {"b", 10, 1.0, {0.001, 0.001}}},
  };
  for (const auto& classes : hostile) {
    try {
      exact_mva_multiclass(net, classes);
      FAIL() << "overflowing population-vector space accepted";
    } catch (const invalid_argument_error& e) {
      EXPECT_NE(std::string(e.what()).find("too large"), std::string::npos);
    }
  }
}

TEST(Multiclass, DemandDimensionMismatchNamesTheClass) {
  // Pin the validation message: a class whose demand vector does not match
  // the station count must be rejected by name before any solving starts.
  const auto net = two_station_net(1.0);
  try {
    exact_mva_multiclass(net, {{"renew", 5, 1.0, {0.1, 0.2, 0.3}}});
    FAIL() << "mismatched demand width accepted";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("renew"), std::string::npos) << what;
    EXPECT_NE(what.find("one demand per station"), std::string::npos) << what;
  }
  EXPECT_THROW(
      schweitzer_mva_multiclass(net, {{"renew", 5, 1.0, {0.1}}}),
      invalid_argument_error);
}

// ------------------------------------------------------------------ facade

SolveOptions multiclass_options(SolverKind kind,
                                std::vector<CustomerClass> classes) {
  SolveOptions options;
  options.solver = kind;
  options.classes = std::move(classes);
  finalize_multiclass_options(options);
  return options;
}

TEST(MulticlassFacade, ExactWrapperIsBitIdenticalToSolve) {
  const auto net = two_station_net(1.5);
  const std::vector<CustomerClass> classes{
      {"renew", 8, 1.5, {0.05, 0.15}},
      {"read", 12, 1.5, {0.02, 0.01}},
  };
  const auto legacy = exact_mva_multiclass(net, classes);
  const auto r = solve(
      net, nullptr, multiclass_options(SolverKind::kExactMulticlass, classes));
  ASSERT_EQ(r.levels(), 12u);
  ASSERT_EQ(r.classes(), 2u);
  const std::size_t top = r.levels() - 1;
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(legacy.class_throughput[c], r.class_x(top, c));
    EXPECT_EQ(legacy.class_response_time[c], r.class_r(top, c));
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(legacy.class_station_queue[c][k], r.class_queue(top, c, k));
    }
  }
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(legacy.station_queue[k], r.queue(top, k));
    EXPECT_EQ(legacy.station_utilization[k], r.utilization(top, k));
  }
  EXPECT_EQ(legacy.total_throughput(), r.class_x(top, 0) + r.class_x(top, 1));
  EXPECT_TRUE(legacy.converged);
  EXPECT_EQ(legacy.iterations, 0u);
}

TEST(MulticlassFacade, SchweitzerWrapperIsBitIdenticalToSolve) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 10, 1.0, {0.05, 0.15}},
      {"b", 20, 1.0, {0.02, 0.01}},
  };
  const auto legacy = schweitzer_mva_multiclass(net, classes);
  auto options =
      multiclass_options(SolverKind::kSchweitzerMulticlass, classes);
  options.schweitzer.max_iterations = 20000;  // the legacy wrapper default
  const auto r = solve(net, nullptr, options);
  const std::size_t top = r.levels() - 1;
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(legacy.class_throughput[c], r.class_x(top, c));
    EXPECT_EQ(legacy.class_response_time[c], r.class_r(top, c));
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(legacy.class_station_queue[c][k], r.class_queue(top, c, k));
    }
  }
  EXPECT_TRUE(legacy.converged);
  EXPECT_GT(legacy.iterations, 0u);
  EXPECT_EQ(legacy.iterations, r.mc_iterations);
}

TEST(MulticlassFacade, SingleClassSpecIsBitIdenticalToMvasd) {
  // A one-class multiclass spec collapses to the single-class recursion:
  // same wait = d (1 + Q_{n-1}) arithmetic, and the aggregate rows are
  // copied (not recomputed as weighted means), so every level matches the
  // mvasd kind bit for bit.
  const auto net = two_station_net(1.0);
  const std::vector<double> demands{0.05, 0.12};
  const std::vector<CustomerClass> classes{{"only", 15, 1.0, demands}};
  const auto mc = solve(
      net, nullptr, multiclass_options(SolverKind::kExactMulticlass, classes));
  const auto sc = solve(net, DemandModel::constant(demands),
                        {SolverKind::kMvasd, 15});
  ASSERT_EQ(mc.levels(), sc.levels());
  for (std::size_t t = 0; t < sc.levels(); ++t) {
    EXPECT_EQ(mc.throughput[t], sc.throughput[t]) << "level " << t;
    EXPECT_EQ(mc.response_time[t], sc.response_time[t]) << "level " << t;
    EXPECT_EQ(mc.cycle_time[t], sc.cycle_time[t]) << "level " << t;
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(mc.queue(t, k), sc.queue(t, k));
      EXPECT_EQ(mc.utilization(t, k), sc.utilization(t, k));
      EXPECT_EQ(mc.residence(t, k), sc.residence(t, k));
    }
  }
}

TEST(MulticlassFacade, SingleVaryingClassIsBitIdenticalToMvasd) {
  // Per-class concurrency-varying demands: with one class the total
  // population IS the concurrency, so the spec must reproduce MVASD.
  const auto net = two_station_net(1.0);
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(
          interp::SampleSet({1, 10, 20}, {0.10, 0.07, 0.05})));
  const auto model = DemandModel::interpolated({spline, spline});
  CustomerClass cls{"only", 20, 1.0, {}};
  cls.demand_model = std::make_shared<DemandModel>(model);
  const auto mc = solve(net, nullptr,
                        multiclass_options(SolverKind::kExactMulticlass, {cls}));
  const auto sd = solve(net, model, {SolverKind::kMvasd, 20});
  ASSERT_EQ(mc.levels(), sd.levels());
  for (std::size_t t = 0; t < sd.levels(); ++t) {
    EXPECT_EQ(mc.throughput[t], sd.throughput[t]) << "level " << t;
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(mc.queue(t, k), sd.queue(t, k));
      EXPECT_EQ(mc.utilization(t, k), sd.utilization(t, k));
    }
  }
}

TEST(MulticlassFacade, KindNamesRoundTrip) {
  for (const auto kind :
       {SolverKind::kExactMulticlass, SolverKind::kMomMulticlass,
        SolverKind::kSchweitzerMulticlass}) {
    EXPECT_TRUE(is_multiclass(kind));
    EXPECT_EQ(parse_solver_kind(solver_kind_name(kind)), kind);
  }
  EXPECT_FALSE(is_multiclass(SolverKind::kMvasd));
}

TEST(MulticlassFacade, ClassesAndKindMustAgree) {
  const auto net = two_station_net(1.0);
  const auto demands = DemandModel::constant({0.05, 0.12});
  // Multiclass kind without classes.
  SolveOptions bare{SolverKind::kExactMulticlass, 5};
  EXPECT_THROW(solve(net, demands, bare), invalid_argument_error);
  // Single-class kind with classes.
  SolveOptions mixed{SolverKind::kMvasd, 5};
  mixed.classes = {{"a", 5, 1.0, {0.05, 0.12}}};
  EXPECT_THROW(solve(net, demands, mixed), invalid_argument_error);
  // Multiclass kind with a stale axis depth (invariant violated).
  SolveOptions stale{SolverKind::kExactMulticlass, 3};
  stale.classes = {{"a", 5, 1.0, {0.05, 0.12}}};
  EXPECT_THROW(solve(net, nullptr, stale), invalid_argument_error);
}

TEST(MulticlassFacade, DuplicateClassNamesRejected) {
  const auto net = two_station_net(1.0);
  try {
    exact_mva_multiclass(net, {{"renew", 5, 1.0, {0.05, 0.12}},
                               {"renew", 3, 1.0, {0.02, 0.01}}});
    FAIL() << "duplicate class name accepted";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("renew"), std::string::npos);
  }
}

// ---------------------------------------------------------------- series

TEST(MulticlassSeries, PrefixEqualsShallowerMix) {
  // Level t of the axis series is a full solve of the mix with the axis
  // class at population t — the property the scenario cache's mix-prefix
  // reuse rests on.  Both sides must be bit-identical.
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> deep{{"a", 4, 1.0, {0.05, 0.15}},
                                        {"b", 6, 1.0, {0.02, 0.01}}};
  const std::vector<CustomerClass> shallow{{"a", 4, 1.0, {0.05, 0.15}},
                                           {"b", 3, 1.0, {0.02, 0.01}}};
  const auto full = exact_multiclass_series(net, deep);
  ASSERT_EQ(full.levels(), 6u);
  EXPECT_EQ(full.mc_axis, 1u);
  const auto trimmed = full.prefix(3);
  const auto direct = exact_multiclass_series(net, shallow);
  ASSERT_EQ(trimmed.levels(), direct.levels());
  EXPECT_EQ(trimmed.class_population, direct.class_population);
  EXPECT_EQ(trimmed.throughput, direct.throughput);
  EXPECT_EQ(trimmed.response_time, direct.response_time);
  EXPECT_EQ(trimmed.cycle_time, direct.cycle_time);
  EXPECT_EQ(trimmed.station_queue, direct.station_queue);
  EXPECT_EQ(trimmed.station_utilization, direct.station_utilization);
  EXPECT_EQ(trimmed.class_throughput, direct.class_throughput);
  EXPECT_EQ(trimmed.class_response_time, direct.class_response_time);
  EXPECT_EQ(trimmed.class_station_queue, direct.class_station_queue);
}

TEST(MulticlassSeries, GridDeepeningIsBitIdentical) {
  const auto net = two_station_net(1.0);
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(
          interp::SampleSet({1, 8, 16}, {0.10, 0.08, 0.05})));
  CustomerClass varying{"v", 6, 1.0, {}};
  varying.demand_model =
      std::make_shared<DemandModel>(DemandModel::interpolated({spline, spline}));
  const std::vector<CustomerClass> classes{{"c", 4, 1.0, {0.02, 0.03}},
                                           varying};
  const MulticlassGrid shallow(net, classes, 5);
  const MulticlassGrid deepened(net, classes, 10, &shallow);
  const MulticlassGrid direct(net, classes, 10);
  EXPECT_TRUE(deepened.varying());
  for (std::size_t c = 0; c < 2; ++c) {
    for (unsigned n = 1; n <= 10; ++n) {
      for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_EQ(deepened.row(c, n)[k], direct.row(c, n)[k])
            << "class " << c << " n " << n << " station " << k;
      }
    }
  }
  // A pre-built grid drives the solver to the same result as local
  // tabulation.
  const auto with_grid = exact_multiclass_series(net, classes, &direct);
  const auto without = exact_multiclass_series(net, classes);
  EXPECT_EQ(with_grid.throughput, without.throughput);
  EXPECT_EQ(with_grid.class_throughput, without.class_throughput);
}

TEST(MulticlassSeries, VaryingDemandsReadTotalPopulation) {
  // Two classes whose model demands fall with total concurrency: the mix's
  // demands at the top level must be the model value at the *total*
  // population, not the per-class one.
  const auto net = two_station_net(0.0);
  auto flat = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({1, 12}, {0.10, 0.10})));
  auto falling = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({1, 12}, {0.10, 0.021})));
  CustomerClass a{"a", 4, 0.0, {}};
  a.demand_model = std::make_shared<DemandModel>(
      DemandModel::interpolated({flat, falling}));
  const std::vector<CustomerClass> classes{a, {"b", 8, 0.0, {0.05, 0.05}}};
  const auto r = exact_multiclass_series(net, classes);
  // At the full mix the total population is 12, where the falling spline
  // reads 0.021; a per-class read (n=4) would sit near 0.08.  Utilization
  // U_1 = X_a d_a1(12) + X_b 0.05 pins which one the solver used.
  const std::size_t top = r.levels() - 1;
  const double xa = r.class_x(top, 0);
  const double xb = r.class_x(top, 1);
  EXPECT_NEAR(r.utilization(top, 1), xa * 0.021 + xb * 0.05, 1e-12);
}

// -------------------------------------------------------- method of moments

TEST(MulticlassMom, MatchesExactOnSmallMixes) {
  const auto net = two_station_net(1.5);
  const std::vector<std::vector<CustomerClass>> mixes{
      {{"renew", 8, 1.5, {0.05, 0.15}}, {"read", 12, 1.5, {0.02, 0.01}}},
      {{"a", 5, 0.5, {0.03, 0.02}},
       {"b", 7, 2.0, {0.01, 0.04}},
       {"c", 4, 1.0, {0.02, 0.02}}},
      {{"solo", 15, 1.0, {0.05, 0.12}}},
  };
  for (const auto& classes : mixes) {
    const auto exact = exact_mva_multiclass(net, classes);
    const auto mom = mom_multiclass(net, classes);
    ASSERT_EQ(mom.levels(), 1u);
    EXPECT_EQ(mom.mc_axis, MvaResult::kNoAxis);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      EXPECT_NEAR(mom.class_x(0, c), exact.class_throughput[c], 1e-9)
          << "class " << c;
      EXPECT_NEAR(mom.class_r(0, c), exact.class_response_time[c], 1e-9)
          << "class " << c;
      for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_NEAR(mom.class_queue(0, c, k), exact.class_station_queue[c][k],
                    1e-9);
      }
    }
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(mom.queue(0, k), exact.station_queue[k], 1e-9);
      EXPECT_NEAR(mom.utilization(0, k), exact.station_utilization[k], 1e-9);
    }
  }
}

TEST(MulticlassMom, DelayStationsFoldIntoThinkTime) {
  const ClosedNetwork net(
      {Station{"q", 1.0, 1, StationKind::kQueueing},
       Station{"lan", 1.0, 1, StationKind::kDelay}},
      1.0);
  const std::vector<CustomerClass> classes{{"a", 10, 1.0, {0.05, 0.2}},
                                           {"b", 6, 0.5, {0.02, 0.4}}};
  const auto exact = exact_mva_multiclass(net, classes);
  const auto mom = mom_multiclass(net, classes);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(mom.class_x(0, c), exact.class_throughput[c], 1e-9);
    EXPECT_NEAR(mom.class_r(0, c), exact.class_response_time[c], 1e-9);
  }
}

TEST(MulticlassMom, DelayOnlyNetworkIsClosedForm) {
  const ClosedNetwork net({Station{"lan", 1.0, 1, StationKind::kDelay}}, 2.0);
  const std::vector<CustomerClass> classes{{"a", 10, 2.0, {0.5}}};
  const auto r = mom_multiclass(net, classes);
  EXPECT_NEAR(r.class_x(0, 0), 10.0 / 2.5, 1e-12);
}

TEST(MulticlassMom, SolvesMixesBeyondTheExactGuard) {
  // The acceptance fixture: 3 classes x 512 on two stations.  The exact
  // lattice would need 513^3 * 2 > 2^28 doubles — rejected — while the
  // moment recursion is polynomial in the total population and finishes.
  const auto net = two_station_net(2.0);
  const std::vector<CustomerClass> classes{
      {"renew", 512, 2.0, {0.0020, 0.0010}},
      {"read", 512, 2.0, {0.0005, 0.0015}},
      {"browse", 512, 2.0, {0.0010, 0.0005}},
  };
  try {
    exact_mva_multiclass(net, classes);
    FAIL() << "exact recursion accepted an infeasible mix";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("too large"), std::string::npos);
  }
  const auto r = solve(
      net, nullptr, multiclass_options(SolverKind::kMomMulticlass, classes));
  ASSERT_EQ(r.levels(), 1u);
  EXPECT_EQ(r.population[0], 1536u);
  double queued = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    // Little's law per class, on an exact solver, at mild load.
    EXPECT_NEAR(r.class_x(0, c) * (r.class_r(0, c) + 2.0), 512.0, 1e-6)
        << "class " << c;
  }
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_LE(r.utilization(0, k), 1.0 + 1e-9);
    queued += r.queue(0, k);
  }
  double thinking = 0.0;
  for (std::size_t c = 0; c < 3; ++c) thinking += r.class_x(0, c) * 2.0;
  EXPECT_NEAR(queued + thinking, 1536.0, 1e-5);
  // Schweitzer lands in the same neighborhood (sanity against a second,
  // independent solver).
  const auto approx = schweitzer_mva_multiclass(net, classes);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(approx.class_throughput[c], r.class_x(0, c),
                0.10 * r.class_x(0, c));
  }
}

TEST(MulticlassMom, RequiresConstantDemands) {
  const auto net = two_station_net(1.0);
  auto spline = std::make_shared<interp::PiecewiseCubic>(
      interp::build_cubic_spline(interp::SampleSet({1, 10}, {0.1, 0.05})));
  CustomerClass cls{"vary", 5, 1.0, {}};
  cls.demand_model = std::make_shared<DemandModel>(
      DemandModel::interpolated({spline, spline}));
  try {
    mom_multiclass(net, {cls});
    FAIL() << "varying demands accepted by the moment recursion";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("constant demands"),
              std::string::npos);
  }
}

TEST(MulticlassMom, GuardSuggestsSchweitzer) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 4000000, 1.0, {0.0001, 0.0001}},
      {"b", 4000000, 1.0, {0.0001, 0.0001}},
  };
  try {
    mom_multiclass(net, classes);
    FAIL() << "infeasible moment space accepted";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("too large"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("schweitzer-multiclass"),
              std::string::npos);
  }
}

// ------------------------------------------------------------- schweitzer

TEST(MulticlassSchweitzer, ZeroPopulationMixThrowsLikeExact) {
  // Seed-era inconsistency: the exact solver rejected all-zero mixes while
  // Schweitzer silently returned zeros.  Both go through the shared
  // validation now.
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{{"a", 0, 1.0, {0.1, 0.1}}};
  EXPECT_THROW(exact_mva_multiclass(net, classes), invalid_argument_error);
  EXPECT_THROW(schweitzer_mva_multiclass(net, classes),
               invalid_argument_error);
}

TEST(MulticlassSchweitzer, NonConvergenceNamesTheAxisLevel) {
  const auto net = two_station_net(1.0);
  auto options = multiclass_options(
      SolverKind::kSchweitzerMulticlass,
      {{"a", 10, 1.0, {0.05, 0.15}}, {"b", 20, 1.0, {0.02, 0.01}}});
  options.schweitzer.tolerance = 1e-14;
  options.schweitzer.max_iterations = 1;
  try {
    solve(net, nullptr, options);
    FAIL() << "one iteration cannot satisfy a 1e-14 tolerance";
  } catch (const numeric_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("mtperf: ", 0), 0u) << what;
    EXPECT_NE(what.find("did not converge"), std::string::npos) << what;
    EXPECT_NE(what.find("axis population"), std::string::npos) << what;
  }
}

TEST(MulticlassSchweitzer, ReportsIterationsThroughFacadeAndWrapper) {
  const auto net = two_station_net(1.0);
  const std::vector<CustomerClass> classes{
      {"a", 10, 1.0, {0.05, 0.15}},
      {"b", 20, 1.0, {0.02, 0.01}},
  };
  auto options = multiclass_options(SolverKind::kSchweitzerMulticlass, classes);
  options.schweitzer.max_iterations = 20000;
  const auto r = solve(net, nullptr, options);
  EXPECT_GT(r.mc_iterations, 0u);
  const auto legacy = schweitzer_mva_multiclass(net, classes);
  EXPECT_EQ(legacy.iterations, r.mc_iterations);
  EXPECT_TRUE(legacy.converged);
}

}  // namespace
}  // namespace mtperf::core
