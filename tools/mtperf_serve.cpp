// mtperf_serve — line-delimited JSON front end of the scenario engine,
// with two transports over one request-handling core (service/request.hpp):
//
//   stdio (default): one request per stdin line, one response per stdout
//   line in request order, a final metrics line at EOF —
//
//     $ ./tools/mtperf_serve < requests.jsonl
//
//   socket (--port): a micro-batching TCP server (service/server.hpp).
//   Announces readiness on stdout as {"listening":{"port":N}} — with
//   --port 0 the kernel picks the port and N reports it — then serves
//   until a client sends {"cmd":"shutdown"}.  Requests from all
//   connections are micro-batched into Engine::evaluate_batch; responses
//   may return out of request order, matched by the echoed "id".  When
//   the bounded submission queue or a connection's in-flight cap is full
//   the server sheds with an immediate {"error":"overloaded"} line —
//
//     $ ./tools/mtperf_serve --port 7171 --batch-size 64 \
//         --batch-deadline-us 2000 --queue-capacity 1024
//
// See service/request.hpp for the request/response schema (it is the
// same on both transports).  Besides flat scenario requests, both
// transports take {"cmd":"workmodel", ...} service-graph requests
// (service/workmodel.hpp): a mesh of services calling services, compiled
// to the same ScenarioSpec — so workmodels share the engine's cache and
// batch kernel with flat requests.  Result lines carry top-population
// throughput / response / cycle time, the bottleneck station,
// per-station utilization, and the cache verdict (cache_hit /
// prefix_hit / coalesced / solve_ms).  Errors become {"error": ...}
// lines; the process keeps serving.  Metrics lines report cache
// hits/misses/evictions, solve-latency percentiles, batch occupancy,
// and — on the socket transport — admission/shedding counters.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <iostream>
#include <optional>
#include <string>
#include <variant>

#include "common/socket.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/request.hpp"
#include "service/server.hpp"

namespace {

using namespace mtperf;
using service::Json;

/// A pending stdio response: an in-flight evaluation, or a line answered
/// at parse time (error / metrics snapshot) held until its turn.
struct Pending {
  std::variant<std::future<service::Evaluation>, std::string> payload;
  bool series = false;
  Json id;
};

/// Write and flush one buffered response line (already '\n'-terminated).
void emit(const std::string& out) {
  std::fwrite(out.data(), 1, out.size(), stdout);
  std::fflush(stdout);
}

void drain_one(Pending& pending, std::string& out) {
  out.clear();
  if (auto* ready = std::get_if<std::string>(&pending.payload)) {
    emit(*ready);
    return;
  }
  auto& future = std::get<std::future<service::Evaluation>>(pending.payload);
  try {
    service::append_evaluation(out, future.get(), pending.series, pending.id);
  } catch (const std::exception& e) {
    out.clear();
    service::append_error(out, e.what(), pending.id);
  }
  emit(out);
}

/// Emit every response whose turn has come and whose future is ready.
void drain_ready(std::deque<Pending>& queue, std::string& out) {
  while (!queue.empty()) {
    if (auto* future = std::get_if<std::future<service::Evaluation>>(
            &queue.front().payload)) {
      if (future->wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        return;
      }
    }
    drain_one(queue.front(), out);
    queue.pop_front();
  }
}

/// The stdio transport: async submission with in-order responses.  The
/// line and response buffers are reused across requests — the per-line
/// work is one parse_request and one append into a warm buffer.
int serve_stdio(service::Engine& engine) {
  std::deque<Pending> queue;
  std::string line;
  std::string out;
  std::size_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Pending pending;
    try {
      service::ParsedRequest request = service::parse_request(line);
      pending.id = std::move(request.id);
      switch (request.kind) {
        case service::RequestKind::kMetrics: {
          // Snapshot once the preceding requests have answered, so the
          // numbers reflect everything before this line.
          for (auto& p : queue) drain_one(p, out);
          queue.clear();
          std::string ready;
          service::append_metrics(ready, engine.metrics(), nullptr,
                                  pending.id);
          pending.payload = std::move(ready);
          break;
        }
        case service::RequestKind::kShutdown: {
          // stdio has no connections to close; acknowledge and keep
          // reading (EOF is the stdio shutdown signal).
          std::string ready;
          Json::Object ack;
          if (!pending.id.is_null()) ack["id"] = pending.id;
          ack["shutdown"] = true;
          Json(std::move(ack)).dump_to(ready);
          ready.push_back('\n');
          pending.payload = std::move(ready);
          break;
        }
        case service::RequestKind::kScenario: {
          pending.series = request.series;
          pending.payload = engine.submit(std::move(request.spec));
          break;
        }
      }
    } catch (const std::exception& e) {
      std::string ready;
      service::append_error(ready, e.what(), service::recover_request_id(line),
                            line_number);
      pending.payload = std::move(ready);
    }
    queue.push_back(std::move(pending));
    drain_ready(queue, out);
  }
  for (auto& pending : queue) drain_one(pending, out);
  out.clear();
  service::append_metrics(out, engine.metrics());
  emit(out);
  return 0;
}

/// The socket transport: announce the bound port, serve until a client
/// asks for shutdown, then report final metrics on stdout.
int serve_socket(service::ServerOptions options) {
  service::Server server(std::move(options));
  server.start();
  {
    Json::Object inner;
    inner["port"] = static_cast<unsigned long long>(server.port());
    Json::Object ready;
    ready["listening"] = Json(std::move(inner));
    std::string out;
    Json(std::move(ready)).dump_to(out);
    out.push_back('\n');
    emit(out);
  }
  server.wait();
  server.stop();
  const Json server_json = server.server_metrics_json();
  std::string out;
  service::append_metrics(out, server.engine().metrics(), &server_json);
  emit(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions options;
  std::optional<std::uint16_t> port;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--threads") {
      options.engine.threads = static_cast<std::size_t>(next());
    } else if (arg == "--cache-capacity") {
      options.engine.cache_capacity = static_cast<std::size_t>(next());
    } else if (arg == "--shards") {
      options.engine.shards = static_cast<std::size_t>(next());
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(next());
    } else if (arg == "--stdio") {
      port.reset();
    } else if (arg == "--batch-size") {
      options.max_batch = static_cast<std::size_t>(next());
    } else if (arg == "--batch-deadline-us") {
      options.batch_deadline =
          std::chrono::microseconds(static_cast<long>(next()));
    } else if (arg == "--queue-capacity") {
      options.queue_capacity = static_cast<std::size_t>(next());
    } else if (arg == "--max-inflight") {
      options.max_inflight_per_conn = static_cast<std::size_t>(next());
    } else if (arg == "--batchers") {
      options.batchers = static_cast<std::size_t>(next());
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(
          stderr,
          "usage: mtperf_serve [--stdio] [--threads N] [--cache-capacity N]"
          " [--shards N] < requests.jsonl\n"
          "       mtperf_serve --port P [--batch-size N]"
          " [--batch-deadline-us U] [--queue-capacity N] [--max-inflight N]"
          " [--batchers N]\n"
          "One JSON request per line — flat scenarios (single-class"
          " \"demands\" or a multiclass \"classes\" array) or {\"cmd\":"
          "\"workmodel\"} service graphs; see service/request.hpp and"
          " service/workmodel.hpp for the schemas.  Large meshes solve"
          " fastest with \"solver\": \"hierarchical\" (per-service \"tier\""
          " labels plus a top-level \"hierarchy\" options object)."
          "  --port 0 binds a"
          " kernel-assigned port, announced on stdout as"
          " {\"listening\":{\"port\":N}}.\n");
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  // stdout may be a pipe whose reader exits early (head, a dying test
  // harness); die with a failed write, not a SIGPIPE.
  ignore_sigpipe();
  try {
    if (port) {
      options.port = *port;
      return serve_socket(std::move(options));
    }
    service::Engine engine(options.engine);
    return serve_stdio(engine);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
