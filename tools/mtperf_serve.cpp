// mtperf_serve — line-delimited JSON front end of the scenario engine.
//
// Reads one scenario request per stdin line, evaluates it through
// service::Engine (sharded LRU cache, prefix reuse, async execution on the
// shared thread pool), and emits one JSON result line per request — in
// request order — plus a final engine-metrics line at EOF:
//
//   $ ./tools/mtperf_serve < requests.jsonl
//
// Request line:
//   {"label": "baseline",
//    "think": 1.0,
//    "stations": [{"name": "db/cpu", "servers": 16, "visits": 1.0,
//                  "kind": "queueing"}, ...],
//    "demands": {"type": "constant", "values": [0.012, 0.03]}
//             | {"type": "spline", "axis": "concurrency",
//                "x": [1, 100, 500], "y": [[...station 0...], ...]},
//    "solver": "mvasd",            // see core::parse_solver_kind
//    "max_population": 300,
//    "series": false}              // true adds the full X / R+Z series
//
// Control line:
//   {"cmd": "metrics"}            // emit a metrics line immediately
//
// Result lines carry top-population throughput / response / cycle time,
// the bottleneck station, per-station utilization, and the cache verdict
// (cache_hit / prefix_hit / solve_ms).  Errors become {"error": ...}
// lines; the process keeps serving.  The final metrics line reports cache
// hits/misses/evictions, solve-latency percentiles (stats::percentiles),
// and queue depth — the observability hook CI smoke-checks.
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "core/solve.hpp"
#include "core/sweep.hpp"
#include "interp/cubic_spline.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"

namespace {

using namespace mtperf;
using service::Json;

core::ClosedNetwork parse_network(const Json& request) {
  std::vector<core::Station> stations;
  for (const Json& js : request.at("stations").as_array()) {
    core::Station st;
    st.name = js.at("name").as_string();
    st.servers = static_cast<unsigned>(js.number_or("servers", 1.0));
    st.visits = js.number_or("visits", 1.0);
    const std::string kind = js.string_or("kind", "queueing");
    MTPERF_REQUIRE(kind == "queueing" || kind == "delay",
                   "station kind must be 'queueing' or 'delay'");
    st.kind = kind == "delay" ? core::StationKind::kDelay
                              : core::StationKind::kQueueing;
    stations.push_back(std::move(st));
  }
  return core::ClosedNetwork(std::move(stations),
                             request.number_or("think", 0.0));
}

core::DemandModel parse_demands(const Json& spec, std::size_t station_count) {
  const std::string type = spec.string_or("type", "constant");
  if (type == "constant") {
    std::vector<double> values;
    for (const Json& v : spec.at("values").as_array()) {
      values.push_back(v.as_number());
    }
    MTPERF_REQUIRE(values.size() == station_count,
                   "demands.values must list one demand per station");
    return core::DemandModel::constant(std::move(values));
  }
  MTPERF_REQUIRE(type == "spline", "demands.type must be 'constant' or 'spline'");
  const std::string axis_name = spec.string_or("axis", "concurrency");
  MTPERF_REQUIRE(axis_name == "concurrency" || axis_name == "throughput",
                 "demands.axis must be 'concurrency' or 'throughput'");
  const auto axis = axis_name == "throughput"
                        ? core::DemandModel::Axis::kThroughput
                        : core::DemandModel::Axis::kConcurrency;
  std::vector<double> xs;
  for (const Json& v : spec.at("x").as_array()) xs.push_back(v.as_number());
  const auto& per_station = spec.at("y").as_array();
  MTPERF_REQUIRE(per_station.size() == station_count,
                 "demands.y must hold one knot array per station");
  std::vector<std::shared_ptr<const interp::Interpolator1D>> splines;
  splines.reserve(per_station.size());
  for (const Json& ys_json : per_station) {
    std::vector<double> ys;
    for (const Json& v : ys_json.as_array()) ys.push_back(v.as_number());
    MTPERF_REQUIRE(ys.size() == xs.size(),
                   "each demands.y row needs one value per x knot");
    splines.push_back(std::make_shared<interp::PiecewiseCubic>(
        interp::build_cubic_spline(interp::SampleSet(xs, std::move(ys)))));
  }
  return core::DemandModel::interpolated(std::move(splines), axis);
}

core::ScenarioSpec parse_scenario(const Json& request) {
  core::ClosedNetwork network = parse_network(request);
  core::DemandModel demands =
      parse_demands(request.at("demands"), network.size());
  core::SolveOptions options;
  options.solver =
      core::parse_solver_kind(request.string_or("solver", "mvasd"));
  options.max_population =
      static_cast<unsigned>(request.at("max_population").as_number());
  return core::ScenarioSpec{request.string_or("label", ""),
                            std::move(network), std::move(demands), options};
}

Json result_to_json(const service::Evaluation& evaluation, bool series) {
  const core::MvaResult& r = *evaluation.result;
  const std::size_t top = r.levels() - 1;
  Json::Object out;
  out["label"] = evaluation.label;
  out["cache_hit"] = evaluation.cache_hit;
  out["prefix_hit"] = evaluation.prefix_hit;
  out["solve_ms"] = evaluation.solve_ms;
  out["max_population"] = static_cast<unsigned long long>(r.population[top]);
  out["throughput"] = r.throughput[top];
  out["response_time"] = r.response_time[top];
  out["cycle_time"] = r.cycle_time[top];
  std::size_t busiest = 0;
  Json::Object utilization;
  for (std::size_t k = 0; k < r.stations(); ++k) {
    utilization[r.station_names[k]] = r.utilization(top, k);
    if (r.utilization(top, k) > r.utilization(top, busiest)) busiest = k;
  }
  out["bottleneck"] = r.station_names[busiest];
  out["utilization"] = std::move(utilization);
  if (series) {
    Json::Array population, throughput, cycle;
    for (std::size_t i = 0; i < r.levels(); ++i) {
      population.emplace_back(static_cast<unsigned long long>(r.population[i]));
      throughput.emplace_back(r.throughput[i]);
      cycle.emplace_back(r.cycle_time[i]);
    }
    out["population"] = std::move(population);
    out["throughput_series"] = std::move(throughput);
    out["cycle_time_series"] = std::move(cycle);
  }
  return Json(std::move(out));
}

Json metrics_to_json(const service::EngineMetrics& m) {
  Json::Object latency;
  latency["p50"] = m.solve_ms_p50;
  latency["p90"] = m.solve_ms_p90;
  latency["p99"] = m.solve_ms_p99;
  latency["max"] = m.solve_ms_max;
  Json::Object inner;
  inner["requests"] = static_cast<unsigned long long>(m.requests);
  inner["cache_hits"] = static_cast<unsigned long long>(m.hits);
  inner["prefix_hits"] = static_cast<unsigned long long>(m.prefix_hits);
  inner["misses"] = static_cast<unsigned long long>(m.misses);
  inner["evictions"] = static_cast<unsigned long long>(m.evictions);
  inner["entries"] = static_cast<unsigned long long>(m.entries);
  inner["queue_depth"] = static_cast<unsigned long long>(m.queue_depth);
  inner["hit_rate"] = m.hit_rate;
  inner["solve_ms"] = Json(std::move(latency));
  Json::Object out;
  out["metrics"] = Json(std::move(inner));
  return Json(std::move(out));
}

Json error_line(std::size_t line_number, const std::string& message) {
  Json::Object out;
  out["line"] = static_cast<unsigned long long>(line_number);
  out["error"] = message;
  return Json(std::move(out));
}

/// A pending response: either an in-flight evaluation or an immediately
/// answerable line (parse error / metrics request), kept in input order.
struct Pending {
  std::variant<std::future<service::Evaluation>, Json> payload;
  bool series = false;
};

void emit(const Json& line) {
  std::fputs(line.dump().c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

void drain_one(Pending& pending) {
  if (auto* ready = std::get_if<Json>(&pending.payload)) {
    emit(*ready);
    return;
  }
  auto& future = std::get<std::future<service::Evaluation>>(pending.payload);
  try {
    emit(result_to_json(future.get(), pending.series));
  } catch (const std::exception& e) {
    emit(error_line(0, e.what()));
  }
}

/// Emit every response whose turn has come and whose future is ready.
void drain_ready(std::deque<Pending>& queue) {
  while (!queue.empty()) {
    if (auto* future = std::get_if<std::future<service::Evaluation>>(
            &queue.front().payload)) {
      if (future->wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        return;
      }
    }
    drain_one(queue.front());
    queue.pop_front();
  }
}

int serve(service::Engine& engine) {
  std::deque<Pending> queue;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Pending pending;
    try {
      const Json request = Json::parse(line);
      if (request.string_or("cmd", "") == "metrics") {
        // Snapshot once the preceding requests have answered, so the
        // numbers reflect everything before this line.
        for (auto& p : queue) drain_one(p);
        queue.clear();
        pending.payload = metrics_to_json(engine.metrics());
      } else {
        pending.series =
            request.contains("series") && request.at("series").as_bool();
        pending.payload = engine.submit(parse_scenario(request));
      }
    } catch (const std::exception& e) {
      pending.payload = error_line(line_number, e.what());
    }
    queue.push_back(std::move(pending));
    drain_ready(queue);
  }
  for (auto& pending : queue) drain_one(pending);
  emit(metrics_to_json(engine.metrics()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  service::EngineOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--threads") {
      options.threads = static_cast<std::size_t>(next());
    } else if (arg == "--cache-capacity") {
      options.cache_capacity = static_cast<std::size_t>(next());
    } else if (arg == "--shards") {
      options.shards = static_cast<std::size_t>(next());
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: mtperf_serve [--threads N] [--cache-capacity N] "
                   "[--shards N] < requests.jsonl\n"
                   "One JSON scenario request per line; see the header "
                   "comment of tools/mtperf_serve.cpp for the schema.\n");
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  try {
    service::Engine engine(options);
    return serve(engine);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
