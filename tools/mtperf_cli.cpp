// mtperf — command-line front end for the library.
//
// Workflow (paper Fig. 17) without writing C++:
//
//   mtperf plan     --min 1 --max 300 --points 5 [--strategy chebyshev]
//   mtperf simulate --app jpetstore --levels 1,14,28,70,140 --out camp.csv
//   mtperf predict  --campaign camp.csv --think 1.0 --max-users 300
//   mtperf bounds   --campaign camp.csv --think 1.0 --users 200
//
// `simulate` drives the built-in simulated testbed (the stand-in for a real
// load-test run); with real measurements, write the same CSV by hand:
//   concurrency,throughput,response_time,db/cpu:16,db/disk:1,...
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/jpetstore.hpp"
#include "apps/vins.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/prediction.hpp"
#include "ops/bounds.hpp"
#include "ops/demand_table_io.hpp"
#include "workload/campaign.hpp"
#include "workload/report.hpp"
#include "workload/test_plan.hpp"

namespace {

using namespace mtperf;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: mtperf <command> [options]

commands:
  plan      generate load-test concurrency levels
              --min N --max N --points K
              [--strategy chebyshev|equispaced|random] [--seed S]
              [--include-single-user]
  simulate  run a simulated load-test campaign and write it as CSV
              --app vins|jpetstore --out FILE
              [--levels 1,14,28,...] [--duration SECONDS] [--seed S]
  predict   model a campaign CSV with the MVA family
              --campaign FILE --think Z --max-users N
              [--model mvasd|mvasd-ss|mva-fixed] [--at-concurrency I]
              [--axis concurrency|throughput] [--step K]
  bounds    operational-analysis envelope from a campaign CSV
              --campaign FILE --think Z --users N
  describe  sketch the queueing network a campaign implies
              --campaign FILE --think Z
)");
  std::exit(error != nullptr ? 2 : 0);
}

/// Tiny --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage(("unexpected argument: " + key).c_str());
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string str(const std::string& key,
                  std::optional<std::string> fallback = std::nullopt) const {
    const auto it = values_.find(key);
    if (it != values_.end()) return it->second;
    if (fallback) return *fallback;
    usage(("missing required option --" + key).c_str());
  }

  double num(const std::string& key,
             std::optional<double> fallback = std::nullopt) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (fallback) return *fallback;
      usage(("missing required option --" + key).c_str());
    }
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      usage(("option --" + key + " expects a number").c_str());
    }
  }

  std::vector<unsigned> levels(const std::string& key) const {
    std::vector<unsigned> out;
    const auto it = values_.find(key);
    if (it == values_.end()) return out;
    std::string cell;
    std::istringstream is(it->second);
    while (std::getline(is, cell, ',')) {
      out.push_back(static_cast<unsigned>(std::stoul(cell)));
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_plan(const Args& args) {
  const auto lo = static_cast<unsigned>(args.num("min", 1.0));
  const auto hi = static_cast<unsigned>(args.num("max"));
  const auto points = static_cast<std::size_t>(args.num("points"));
  const std::string strategy = args.str("strategy", std::string("chebyshev"));
  workload::SamplingStrategy s = workload::SamplingStrategy::kChebyshev;
  if (strategy == "equispaced") s = workload::SamplingStrategy::kEquispaced;
  else if (strategy == "random") s = workload::SamplingStrategy::kRandom;
  else if (strategy != "chebyshev") usage("unknown --strategy");
  const auto levels = workload::plan_concurrency_levels(
      lo, hi, points, s, static_cast<std::uint64_t>(args.num("seed", 1.0)),
      args.has("include-single-user"));
  std::printf("# %s plan over [%u, %u]\n", strategy.c_str(), lo, hi);
  for (unsigned u : levels) std::printf("%u\n", u);
  return 0;
}

int cmd_simulate(const Args& args) {
  const std::string app_name = args.str("app");
  workload::ApplicationModel app =
      app_name == "vins" ? apps::make_vins()
      : app_name == "jpetstore"
          ? apps::make_jpetstore()
          : (usage("unknown --app (vins|jpetstore)"), apps::make_vins());
  auto levels = args.levels("levels");
  if (levels.empty()) {
    levels = app_name == "vins" ? apps::vins_campaign_levels()
                                : apps::jpetstore_campaign_levels();
  }
  workload::CampaignSettings settings;
  settings.grinder.duration_s = args.num("duration", 600.0);
  settings.seed = static_cast<std::uint64_t>(args.num("seed", 20160101.0));
  std::printf("running %zu simulated load tests of %s ...\n", levels.size(),
              app.name().c_str());
  const auto campaign = workload::run_campaign(app, levels, settings);
  std::printf("%s\n",
              workload::utilization_table(campaign, "Monitored utilization %")
                  .to_string()
                  .c_str());
  const std::string out = args.str("out");
  ops::save_demand_table_file(out, campaign.table);
  std::printf("campaign written to %s (think time of this app: %.2f s)\n",
              out.c_str(), app.think_time());
  return 0;
}

int cmd_predict(const Args& args) {
  const auto table = ops::load_demand_table_file(args.str("campaign"));
  const double think = args.num("think");
  const auto max_users = static_cast<unsigned>(args.num("max-users"));
  const std::string model = args.str("model", std::string("mvasd"));
  const auto axis = args.str("axis", std::string("concurrency")) == "throughput"
                        ? core::DemandModel::Axis::kThroughput
                        : core::DemandModel::Axis::kConcurrency;

  // Map the CLI model name to a declarative spec, then hand everything to
  // the core::solve facade.
  core::ScenarioSpec spec;
  if (model == "mvasd") {
    spec = core::mvasd_scenario(model, table, think, max_users, axis);
  } else if (model == "mvasd-ss") {
    spec = core::mvasd_single_server_scenario(model, table, think, max_users);
  } else if (model == "mva-fixed") {
    spec = core::mva_fixed_scenario(model, table, think, max_users,
                                    args.num("at-concurrency"));
  } else {
    usage("unknown --model (mvasd|mvasd-ss|mva-fixed)");
  }
  const core::MvaResult result =
      core::solve(spec.network, spec.demands, spec.options);

  const auto step = static_cast<unsigned>(args.num("step", max_users / 12.0));
  TextTable t("Prediction (" + model + ")");
  t.set_header({"Users", "X (tx/s)", "R (s)", "R+Z (s)"});
  for (unsigned n = 1; n <= max_users;
       n = n + std::max(1u, step)) {
    const std::size_t i = result.row_for(n);
    t.add_row({fmt(static_cast<long long>(n)), fmt(result.throughput[i], 3),
               fmt(result.response_time[i], 4), fmt(result.cycle_time[i], 4)});
  }
  const std::size_t last = result.levels() - 1;
  t.add_row({fmt(static_cast<long long>(result.population[last])),
             fmt(result.throughput[last], 3),
             fmt(result.response_time[last], 4),
             fmt(result.cycle_time[last], 4)});
  std::printf("%s\n", t.to_string().c_str());

  const auto report =
      core::deviation_against_measurements(model, result, table, think);
  std::printf("deviation vs the campaign's measured rows (Eq. 15): "
              "throughput %.2f%%, cycle time %.2f%%\n",
              report.throughput_deviation_pct,
              report.cycle_time_deviation_pct);
  return 0;
}

int cmd_bounds(const Args& args) {
  const auto table = ops::load_demand_table_file(args.str("campaign"));
  const double think = args.num("think");
  const double users = args.num("users");
  const auto demands = table.demands_at_concurrency(1.0);
  std::vector<double> effective(demands);
  for (std::size_t k = 0; k < effective.size(); ++k) {
    effective[k] /= static_cast<double>(table.servers()[k]);
  }
  ops::BoundsInput in{effective, think};
  std::printf("demands from the lowest measured level (per station, ms):\n");
  for (std::size_t k = 0; k < demands.size(); ++k) {
    std::printf("  %-14s %8.3f  (/%u servers -> %.3f effective)\n",
                table.stations()[k].c_str(), demands[k] * 1000.0,
                table.servers()[k], effective[k] * 1000.0);
  }
  std::printf("\nDmax (effective) = %.4f ms, Dtotal = %.4f ms\n",
              ops::max_demand(effective) * 1000.0,
              ops::total_demand(demands) * 1000.0);
  std::printf("throughput upper bound at N=%g: %.3f tx/s\n", users,
              ops::throughput_upper_bound(in, users));
  std::printf("response-time lower bound at N=%g: %.4f s\n", users,
              ops::response_time_lower_bound(in, users));
  std::printf("knee population N* ~ %.0f users\n", ops::knee_population(in));
  const auto bjb = ops::balanced_job_bounds(in, users);
  std::printf("balanced-job bounds at N=%g: X in [%.3f, %.3f] tx/s\n", users,
              bjb.throughput_lower, bjb.throughput_upper);
  return 0;
}

int cmd_describe(const Args& args) {
  const auto table = ops::load_demand_table_file(args.str("campaign"));
  const double think = args.num("think");
  const auto net = core::network_from_table(table, think);
  std::printf("%s\n", core::network_ascii(net).c_str());
  std::printf("measured levels:");
  for (const auto& p : table.points()) {
    std::printf(" %g", p.concurrency);
  }
  std::printf("\nbottleneck at top load: %s\n",
              table.stations()[table.bottleneck_station()].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "plan") return cmd_plan(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "bounds") return cmd_bounds(args);
    if (command == "describe") return cmd_describe(args);
    if (command == "help" || command == "--help") usage();
    usage(("unknown command: " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
