// End-to-end capacity planning for the VINS insurance application —
// the paper's Fig. 17 workflow as a runnable program:
//
//   1. plan a small number of load tests at Chebyshev concurrency levels,
//   2. run them (against the simulated testbed) and monitor utilization,
//   3. extract service demands via the Service Demand Law and spline them,
//   4. predict throughput / response time up to 1500 users with MVASD,
//   5. answer the SLA question: how many users can we serve with page
//      response time under a target?
//
//   $ ./examples/vins_capacity_planning
#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/vins.hpp"
#include "common/table.hpp"
#include "core/prediction.hpp"
#include "workload/campaign.hpp"
#include "workload/report.hpp"
#include "workload/test_plan.hpp"

int main() {
  using namespace mtperf;

  const auto app = apps::make_vins();
  const double think = app.think_time();
  const unsigned max_users = apps::kVinsMaxUsers;

  // Step 1: test plan — 5 Chebyshev points over [1, 1500], plus N = 1.
  const auto levels = workload::plan_concurrency_levels(
      1, max_users, 5, workload::SamplingStrategy::kChebyshev, 1,
      /*include_single_user=*/true);
  std::printf("Load-test plan (Chebyshev nodes over [1, %u]):", max_users);
  for (unsigned u : levels) std::printf(" %u", u);
  std::printf("\n\n");

  // Step 2: run the tests and monitor every resource.
  workload::CampaignSettings settings;
  settings.grinder.duration_s = 600.0;
  settings.seed = 7;
  const auto campaign = workload::run_campaign(app, levels, settings);
  std::printf("%s\n",
              workload::utilization_table(campaign, "Monitored utilization %")
                  .to_string()
                  .c_str());

  // Step 3+4: demands -> splines -> MVASD, via the declarative facade.
  const auto spec =
      core::mvasd_scenario("MVASD", campaign.table, think, max_users);
  const auto prediction = core::solve(spec.network, spec.demands, spec.options);

  const double pages = static_cast<double>(campaign.pages_per_transaction);
  TextTable t("MVASD capacity forecast");
  t.set_header({"Users", "Pages/s", "Page RT (ms)", "Bottleneck util"});
  const std::size_t bottleneck = campaign.table.bottleneck_station();
  for (unsigned n : {1u, 100u, 250u, 500u, 750u, 1000u, 1250u, 1500u}) {
    const std::size_t i = prediction.row_for(n);
    t.add_row({fmt(static_cast<long long>(n)),
               fmt(prediction.throughput[i] * pages, 1),
               fmt(prediction.response_time[i] / pages * 1000.0, 1),
               fmt_percent(prediction.utilization(i, bottleneck) * 100.0, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Bottleneck device: %s\n\n",
              campaign.table.stations()[bottleneck].c_str());

  // Step 5: SLA — max users with mean page response time under 100 ms.
  const double sla_page_rt = 0.100;
  unsigned supported = 0;
  for (std::size_t i = 0; i < prediction.levels(); ++i) {
    if (prediction.response_time[i] / pages <= sla_page_rt) {
      supported = prediction.population[i];
    }
  }
  std::printf("SLA: mean page response time <= %.0f ms is met up to %u "
              "concurrent users.\n", sla_page_rt * 1000.0, supported);
  return 0;
}
