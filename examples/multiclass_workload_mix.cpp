// Multi-class what-if: VINS serves two user populations — Renew Policy
// (heavy, 7 pages) and Read Policy (light, mostly cached reads).  How does
// shifting the mix between them move throughput and response times?
//
// Multi-server CPUs are folded in with the Seidmann transform so the
// multi-class solver (single-server + delay stations) applies.
//
//   $ ./examples/multiclass_workload_mix
#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/vins.hpp"
#include "common/table.hpp"
#include "core/mva_multiclass.hpp"
#include "core/prediction.hpp"
#include "core/seidmann.hpp"
#include "workload/campaign.hpp"

int main() {
  using namespace mtperf;

  const auto app = apps::make_vins();
  workload::CampaignSettings settings;
  settings.grinder.duration_s = 600.0;
  settings.seed = 13;
  const auto campaign =
      workload::run_campaign(app, {1, 102, 373, 680}, settings);

  // Renew Policy demands: measured near saturation.  Read Policy: the
  // light read-only VINS workflow (its model demands at the same load).
  const auto renew = campaign.table.demands_at_concurrency(373.0);
  apps::VinsConfig read_cfg;
  read_cfg.workflow = apps::VinsWorkflow::kReadPolicyDetails;
  const auto read = apps::make_vins(read_cfg).true_demands(373.0);

  // Fold 16-core CPUs into single-server + delay legs (Seidmann) so the
  // multi-class solver applies; transform both classes' demands alike.
  const auto base_net = core::network_from_table(campaign.table, 1.0);
  const auto t_renew = core::seidmann_transform(base_net, renew);
  const auto t_read = core::seidmann_transform(base_net, read);

  TextTable table("VINS mix sweep: 600 users split between classes");
  table.set_header({"Renew users", "Read users", "X renew (tx/s)",
                    "X read (tx/s)", "R renew (s)", "R read (s)"});
  for (unsigned renew_users : {600u, 450u, 300u, 150u, 0u}) {
    const unsigned read_users = 600 - renew_users;
    std::vector<core::CustomerClass> classes{
        {"renew", renew_users, 1.0, t_renew.service_times, nullptr},
        {"read", read_users, 1.0, t_read.service_times, nullptr},
    };
    const auto r = core::schweitzer_mva_multiclass(t_renew.network, classes);
    table.add_row({fmt(static_cast<long long>(renew_users)),
                   fmt(static_cast<long long>(read_users)),
                   fmt(r.class_throughput[0], 1), fmt(r.class_throughput[1], 1),
                   fmt(r.class_response_time[0], 3),
                   fmt(r.class_response_time[1], 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Note how the read-only class's response time climbs as Renew users\n"
      "are added, even though its own demands never change — cross-class\n"
      "interference at the shared stations, which a single-class model\n"
      "cannot show.\n");
  return 0;
}
