// What-if analysis: once demands have been measured on the current
// hardware, MVA answers deployment questions without further load tests.
// Here: would upgrading the VINS database disk (or adding CPU cores) lift
// the throughput ceiling, and by how much?
//
//   $ ./examples/whatif_hardware_upgrade
#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/vins.hpp"
#include "common/table.hpp"
#include "core/mva_multiserver.hpp"
#include "core/network.hpp"
#include "core/prediction.hpp"
#include "workload/campaign.hpp"

int main() {
  using namespace mtperf;

  const auto app = apps::make_vins();
  const double think = app.think_time();

  workload::CampaignSettings settings;
  settings.grinder.duration_s = 600.0;
  settings.seed = 3;
  const auto campaign =
      workload::run_campaign(app, apps::vins_campaign_levels(), settings);

  // Demands measured near saturation on the current hardware.
  auto demands = campaign.table.demands_at_concurrency(1020.0);
  const auto baseline_net = core::network_from_table(campaign.table, think);
  const unsigned max_users = apps::kVinsMaxUsers;

  struct WhatIf {
    std::string label;
    std::vector<double> demands;
    std::vector<unsigned> servers;
  };
  std::vector<unsigned> base_servers = campaign.table.servers();

  std::vector<WhatIf> cases;
  cases.push_back({"current hardware", demands, base_servers});
  {
    // A disk array twice as fast: halve the disk demands.
    auto d = demands;
    d[apps::kDbDisk] /= 2.0;
    d[apps::kLoadDisk] /= 2.0;
    cases.push_back({"2x faster disks", d, base_servers});
  }
  {
    // 32-core CPUs instead of 16 (same per-core speed).
    auto s = base_servers;
    s[apps::kLoadCpu] = s[apps::kAppCpu] = s[apps::kDbCpu] = 32;
    cases.push_back({"32-core CPUs", demands, s});
  }
  {
    auto d = demands;
    d[apps::kDbDisk] /= 2.0;
    d[apps::kLoadDisk] /= 2.0;
    auto s = base_servers;
    s[apps::kDbCpu] = 32;
    cases.push_back({"2x disks + 32-core DB", d, s});
  }

  TextTable t("What-if: VINS at 1500 users under hardware variants");
  t.set_header({"Configuration", "Pages/s", "Page RT (ms)", "Bottleneck"});
  const double pages = static_cast<double>(campaign.pages_per_transaction);
  for (const auto& c : cases) {
    const auto net =
        core::make_network(campaign.table.stations(), c.servers, think);
    const auto r = core::exact_multiserver_mva(net, c.demands, max_users);
    // Find the busiest station at top load.
    const std::size_t top = r.levels() - 1;
    std::size_t busiest = 0;
    for (std::size_t k = 1; k < r.stations(); ++k) {
      if (r.utilization(top, k) > r.utilization(top, busiest)) busiest = k;
    }
    t.add_row({c.label, fmt(r.throughput.back() * pages, 1),
               fmt(r.response_time.back() / pages * 1000.0, 1),
               campaign.table.stations()[busiest] + " (" +
                   fmt(r.utilization(top, busiest) * 100.0, 0) + "%)"});
  }
  std::printf("%s\n", t.to_string().c_str());
  (void)baseline_net;
  std::printf(
      "Faster disks move the VINS bottleneck; more CPU cores alone do not —\n"
      "the application is disk-bound (paper Table 2's diagnosis).\n");
  return 0;
}
