// What-if analysis: once demands have been measured on the current
// hardware, MVA answers deployment questions without further load tests.
// Here: would upgrading the VINS database disk (or adding CPU cores) lift
// the throughput ceiling, and by how much?
//
// The variants are declarative ScenarioSpecs evaluated through the
// service::Engine: structure-compatible variants solve together in one
// lockstep lane-major batch (core::solve_batch), and repeated or
// shallower questions (e.g. "and at 500 users?") come straight out of
// the result cache instead of re-solving.
//
//   $ ./examples/whatif_hardware_upgrade
#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/vins.hpp"
#include "common/table.hpp"
#include "core/network.hpp"
#include "core/prediction.hpp"
#include "service/engine.hpp"
#include "workload/campaign.hpp"

int main() {
  using namespace mtperf;

  const auto app = apps::make_vins();
  const double think = app.think_time();

  workload::CampaignSettings settings;
  settings.grinder.duration_s = 600.0;
  settings.seed = 3;
  const auto campaign =
      workload::run_campaign(app, apps::vins_campaign_levels(), settings);

  // Demands measured near saturation on the current hardware.
  const auto demands = campaign.table.demands_at_concurrency(1020.0);
  const std::vector<unsigned> base_servers = campaign.table.servers();
  const unsigned max_users = apps::kVinsMaxUsers;

  auto spec_for = [&](std::string label, std::vector<double> d,
                      std::vector<unsigned> servers, unsigned users) {
    core::ScenarioSpec spec;
    spec.label = std::move(label);
    spec.network =
        core::make_network(campaign.table.stations(), servers, think);
    spec.demands = core::DemandModel::constant(std::move(d));
    spec.options.solver = core::SolverKind::kExactMultiserver;
    spec.options.max_population = users;
    return spec;
  };

  std::vector<core::ScenarioSpec> cases;
  cases.push_back(spec_for("current hardware", demands, base_servers,
                           max_users));
  {
    // A disk array twice as fast: halve the disk demands.
    auto d = demands;
    d[apps::kDbDisk] /= 2.0;
    d[apps::kLoadDisk] /= 2.0;
    cases.push_back(spec_for("2x faster disks", d, base_servers, max_users));
  }
  {
    // 32-core CPUs instead of 16 (same per-core speed).
    auto s = base_servers;
    s[apps::kLoadCpu] = s[apps::kAppCpu] = s[apps::kDbCpu] = 32;
    cases.push_back(spec_for("32-core CPUs", demands, s, max_users));
  }
  {
    auto d = demands;
    d[apps::kDbDisk] /= 2.0;
    d[apps::kLoadDisk] /= 2.0;
    auto s = base_servers;
    s[apps::kDbCpu] = 32;
    cases.push_back(spec_for("2x disks + 32-core DB", d, s, max_users));
  }
  // Follow-up question: the current hardware at a planned 500-user rollout.
  // Structurally identical to the first case at a lower population, so the
  // engine answers it as a prefix of the cached 1500-user solve.
  cases.push_back(spec_for("current hardware @500", demands, base_servers, 500));

  service::Engine engine;
  const auto evaluations = engine.evaluate_batch(cases);

  TextTable t("What-if: VINS under hardware variants (via service::Engine)");
  t.set_header({"Configuration", "Users", "Pages/s", "Page RT (ms)",
                "Bottleneck", "Cache"});
  const double pages = static_cast<double>(campaign.pages_per_transaction);
  for (const auto& e : evaluations) {
    const auto& r = *e.result;
    const std::size_t top = r.levels() - 1;
    std::size_t busiest = 0;
    for (std::size_t k = 1; k < r.stations(); ++k) {
      if (r.utilization(top, k) > r.utilization(top, busiest)) busiest = k;
    }
    t.add_row({e.label, fmt(static_cast<long long>(r.population[top])),
               fmt(r.throughput[top] * pages, 1),
               fmt(r.response_time[top] / pages * 1000.0, 1),
               r.station_names[busiest] + " (" +
                   fmt(r.utilization(top, busiest) * 100.0, 0) + "%)",
               e.prefix_hit ? "prefix hit" : (e.cache_hit ? "hit" : "solved")});
  }
  std::printf("%s\n", t.to_string().c_str());

  const auto metrics = engine.metrics();
  std::printf("Engine: %llu requests, %llu cache hits (%llu prefix), "
              "%llu solves.\n",
              static_cast<unsigned long long>(metrics.requests),
              static_cast<unsigned long long>(metrics.hits),
              static_cast<unsigned long long>(metrics.prefix_hits),
              static_cast<unsigned long long>(metrics.misses));
  std::printf(
      "Faster disks move the VINS bottleneck; more CPU cores alone do not —\n"
      "the application is disk-bound (paper Table 2's diagnosis).\n");
  return 0;
}
