// Quickstart: model a small multi-tier system with MVA and MVASD.
//
// Builds a three-station closed network by hand, solves it with
//  (a) exact multi-server MVA with constant demands (Algorithm 2), and
//  (b) MVASD with demands that shrink as concurrency grows (Algorithm 3),
// then prints the predicted throughput / response-time curves side by side.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "core/demand_model.hpp"
#include "core/network.hpp"
#include "core/solve.hpp"
#include "interp/cubic_spline.hpp"

int main() {
  using namespace mtperf;

  // A web server (8 cores), a database disk, and a database CPU (8 cores),
  // with users thinking 2 s between requests.
  const core::ClosedNetwork network = core::make_network(
      {"web/cpu", "db/disk", "db/cpu"}, {8, 1, 8}, /*think_time=*/2.0);
  std::printf("%s\n", core::network_ascii(network).c_str());

  // Constant single-user demands (seconds per transaction).
  const std::vector<double> demands = {0.040, 0.012, 0.060};

  // Suppose load tests showed demands falling with concurrency (caching):
  // a cubic spline per station through the measured points is MVASD's input.
  auto spline_of = [](std::vector<double> n, std::vector<double> d) {
    return std::make_shared<interp::PiecewiseCubic>(interp::build_cubic_spline(
        interp::SampleSet(std::move(n), std::move(d))));
  };
  const core::DemandModel varying = core::DemandModel::interpolated({
      spline_of({1, 50, 150, 400}, {0.040, 0.036, 0.031, 0.029}),
      spline_of({1, 50, 150, 400}, {0.012, 0.010, 0.008, 0.0075}),
      spline_of({1, 50, 150, 400}, {0.060, 0.052, 0.046, 0.044}),
  });

  // core::solve is the single entry point: pick a solver kind, hand it the
  // network and a demand model, and ask for the population range.
  const unsigned max_users = 400;
  core::SolveOptions options;
  options.max_population = max_users;

  options.solver = core::SolverKind::kExactMultiserver;
  const core::MvaResult fixed =
      core::solve(network, core::DemandModel::constant(demands), options);

  options.solver = core::SolverKind::kMvasd;
  const core::MvaResult adaptive = core::solve(network, varying, options);

  TextTable table("MVA (constant demands) vs MVASD (varying demands)");
  table.set_header({"Users", "X mva (tx/s)", "X mvasd (tx/s)", "R mva (s)",
                    "R mvasd (s)", "db/cpu util mvasd"});
  for (unsigned n : {1u, 25u, 50u, 100u, 200u, 300u, 400u}) {
    const std::size_t i = fixed.row_for(n);
    table.add_row({fmt(static_cast<long long>(n)),
                   fmt(fixed.throughput[i], 2), fmt(adaptive.throughput[i], 2),
                   fmt(fixed.response_time[i], 4),
                   fmt(adaptive.response_time[i], 4),
                   fmt_percent(adaptive.utilization(i, 2) * 100.0, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("MVASD predicts a higher throughput ceiling because it sees the\n"
              "demand reduction the system exhibits under load; constant-demand\n"
              "MVA extrapolates the single-user demands and saturates early.\n");
  return 0;
}
