// Bottleneck analysis of the JPetStore e-commerce application: find the
// saturating device, compute the operational-analysis envelope (knee and
// asymptotes, paper Eqs. 5-6), and compare against MVASD's full curve.
//
//   $ ./examples/jpetstore_bottleneck
#include <cstdio>

#include "apps/jpetstore.hpp"
#include "apps/testbed.hpp"
#include "common/table.hpp"
#include "core/prediction.hpp"
#include "ops/bounds.hpp"
#include "workload/campaign.hpp"

int main() {
  using namespace mtperf;

  const auto app = apps::make_jpetstore();
  const double think = app.think_time();

  workload::CampaignSettings settings;
  settings.grinder.duration_s = 600.0;
  settings.seed = 99;
  const auto campaign = workload::run_campaign(
      app, apps::jpetstore_campaign_levels(), settings);

  // Who is the bottleneck, and how busy is everything at top load?
  const auto& table = campaign.table;
  const auto& top = table.points().back();
  TextTable busy("Utilization at " +
                 std::to_string(static_cast<unsigned>(top.concurrency)) +
                 " users");
  busy.set_header({"Station", "Servers", "Utilization"});
  for (std::size_t k = 0; k < table.stations().size(); ++k) {
    busy.add_row({table.stations()[k],
                  fmt(static_cast<long long>(table.servers()[k])),
                  fmt_percent(top.utilization[k] * 100.0, 1)});
  }
  std::printf("%s\n", busy.to_string().c_str());
  const std::size_t bottleneck = table.bottleneck_station();
  std::printf("Bottleneck: %s\n\n", table.stations()[bottleneck].c_str());

  // Operational-analysis envelope from the single-user demands.
  const auto d1 = table.demands_at_concurrency(1.0);
  // Per-capacity effective demands for the bottleneck asymptote.
  std::vector<double> effective(d1);
  for (std::size_t k = 0; k < effective.size(); ++k) {
    effective[k] /= static_cast<double>(table.servers()[k]);
  }
  ops::BoundsInput bounds{effective, think};
  std::printf("Asymptotic analysis (from single-user demands):\n");
  std::printf("  total demand D = %.4f s, max effective demand = %.5f s\n",
              ops::total_demand(d1), ops::max_demand(effective));
  std::printf("  throughput ceiling 1/Dmax = %.1f tx/s (%.0f pages/s)\n",
              1.0 / ops::max_demand(effective),
              1.0 / ops::max_demand(effective) *
                  static_cast<double>(campaign.pages_per_transaction));
  std::printf("  knee population N* = %.0f users\n\n",
              ops::knee_population(bounds));

  // MVASD refines the envelope into the full curve.
  const auto spec =
      core::mvasd_scenario("MVASD", table, think, apps::kJPetStoreMaxUsers);
  const auto prediction = core::solve(spec.network, spec.demands, spec.options);
  TextTable t("Bounds vs MVASD");
  t.set_header({"Users", "X upper bound (tx/s)", "MVASD X (tx/s)",
                "R lower bound (s)", "MVASD R (s)"});
  for (unsigned n : {1u, 35u, 70u, 140u, 210u, 280u}) {
    const std::size_t i = prediction.row_for(n);
    t.add_row({fmt(static_cast<long long>(n)),
               fmt(ops::throughput_upper_bound(bounds, n), 2),
               fmt(prediction.throughput[i], 2),
               fmt(ops::response_time_lower_bound(bounds, n), 3),
               fmt(prediction.response_time[i], 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Note: the Eq. 5-6 envelope uses fixed single-user demands, so\n"
              "MVASD (whose demands shrink under load) may legitimately "
              "exceed it near saturation — that gap *is* the paper's point.\n");
  return 0;
}
