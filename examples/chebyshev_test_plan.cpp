// The paper's Fig. 17 workflow as a reusable planning tool: given a
// concurrency range and a test budget, emit the Chebyshev load-test plan,
// the expected interpolation accuracy (Eq. 19), and a ready-to-use
// grinder.properties file for each planned test.
//
//   $ ./examples/chebyshev_test_plan
#include <cstdio>

#include "common/table.hpp"
#include "interp/chebyshev.hpp"
#include "workload/grinder.hpp"
#include "workload/test_plan.hpp"

int main() {
  using namespace mtperf;

  const unsigned lo = 1, hi = 300;
  std::printf("Planning load tests for concurrency range [%u, %u]\n\n", lo, hi);

  // Step 0: how many tests do we need?  Eq. 19 for a smooth demand curve
  // (exponential-like variation) says the interpolation error collapses
  // fast with node count.
  TextTable budget("Expected interpolation error bound (Eq. 19, mu = 1)");
  budget.set_header({"Tests", "Error bound", "Comment"});
  for (std::size_t n = 2; n <= 8; ++n) {
    const double bound = interp::chebyshev_error_bound_exponential(n, 1.0);
    budget.add_row({fmt(static_cast<long long>(n)), fmt(bound, 6),
                    bound < 0.002 ? "< 0.2% — paper's sweet spot" : ""});
  }
  std::printf("%s\n", budget.to_string().c_str());

  // Step 1: the node sets for common budgets.
  for (std::size_t n : {3u, 5u, 7u}) {
    const auto levels = workload::plan_concurrency_levels(
        lo, hi, n, workload::SamplingStrategy::kChebyshev);
    std::printf("Chebyshev %zu plan: ", n);
    for (unsigned u : levels) std::printf(" %u", u);
    std::printf("\n");
  }
  std::printf("\n");

  // Step 2: emit a grinder.properties per test of the 5-node plan.
  const auto plan = workload::plan_concurrency_levels(
      lo, hi, 5, workload::SamplingStrategy::kChebyshev);
  for (unsigned users : plan) {
    workload::GrinderConfig cfg;
    cfg.script = "shopping_workflow.py";
    cfg.processes = (users + 24) / 25;  // up to 25 threads per process
    cfg.threads = (users + cfg.processes - 1) / cfg.processes;
    cfg.duration_s = 1800.0;
    cfg.process_increment = 1;
    cfg.process_increment_interval_s = 30.0;
    std::printf("# --- test at %u users (%u x %u) ---\n%s\n", users,
                cfg.processes, cfg.threads, cfg.to_properties().c_str());
  }
  std::printf("Run each test, monitor CPU/disk/network with vmstat / iostat /\n"
              "netstat, then feed the utilization table to "
              "core::predict_mvasd().\n");
  return 0;
}
